"""Geo-distributed federation: selectors and multi-region simulation."""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.regions import region_trace
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import ConfigError
from repro.federation.selectors import (
    GreedySpatial,
    HomeRegion,
    LowestMeanCI,
    SpatioTemporal,
)
from repro.federation.simulation import FederatedRegion, run_federated_simulation
from repro.policies.base import SchedulingContext
from repro.units import days, hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.sampling import week_long_trace
from repro.workload.synthetic import alibaba_like
from repro.workload.trace import WorkloadTrace


def ctx_for(hourly):
    trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
    queues = QueueSet(
        (JobQueue(name="q", max_length=hours(72), max_wait=hours(6), avg_length=60.0),)
    )
    return SchedulingContext(forecaster=PerfectForecaster(trace), queues=queues)


def job(arrival=0, length=60):
    return Job(job_id=0, arrival=arrival, length=length, cpus=1, queue="q")


class TestSelectors:
    def test_home_region(self):
        contexts = {"a": ctx_for([100.0] * 200), "b": ctx_for([1.0] * 200)}
        assert HomeRegion("a").select(job(), contexts) == "a"

    def test_home_must_exist(self):
        with pytest.raises(ConfigError):
            HomeRegion("z").select(job(), {"a": ctx_for([1.0] * 200)})

    def test_lowest_mean_ci(self):
        contexts = {"dirty": ctx_for([500.0] * 200), "clean": ctx_for([30.0] * 200)}
        assert LowestMeanCI().select(job(), contexts) == "clean"

    def test_greedy_spatial_uses_current_window(self):
        # "clean-later" is greenest on average over the first hours but
        # dirty *right now*; greedy must look at the immediate window.
        dirty_now = [400.0] * 3 + [10.0] * 200
        steady = [100.0] * 203
        contexts = {"later": ctx_for(dirty_now), "steady": ctx_for(steady)}
        assert GreedySpatial().select(job(), contexts) == "steady"

    def test_spatio_temporal_waits_for_the_valley(self):
        # Same traces: within the 6 h waiting window, "later" offers a
        # 10 g valley that beats "steady" -- joint selection finds it.
        dirty_now = [400.0] * 3 + [10.0] * 200
        steady = [100.0] * 203
        contexts = {"later": ctx_for(dirty_now), "steady": ctx_for(steady)}
        assert SpatioTemporal().select(job(), contexts) == "later"

    def test_deterministic_tie_break(self):
        contexts = {"b": ctx_for([100.0] * 200), "a": ctx_for([100.0] * 200)}
        assert GreedySpatial().select(job(), contexts) == "a"  # sorted order


class TestFederatedSimulation:
    @pytest.fixture(scope="class")
    def workload(self):
        return week_long_trace(
            alibaba_like(6_000, horizon=days(40), seed=4), num_jobs=200
        )

    @pytest.fixture(scope="class")
    def regions(self):
        return [
            FederatedRegion("CA-US", region_trace("CA-US")),
            FederatedRegion("SA-AU", region_trace("SA-AU")),
            FederatedRegion("ON-CA", region_trace("ON-CA")),
        ]

    def test_home_equals_single_region(self, workload, regions):
        from repro.simulator.simulation import run_simulation

        federated = run_federated_simulation(
            workload, regions, HomeRegion("CA-US"), "carbon-time", home="CA-US"
        )
        single = run_simulation(workload, region_trace("CA-US"), "carbon-time")
        assert federated.total_carbon_kg == pytest.approx(single.total_carbon_kg)
        assert federated.migrated_jobs == 0
        assert federated.placements["CA-US"] == len(workload)

    def test_spatial_beats_home_on_carbon(self, workload, regions):
        home = run_federated_simulation(
            workload, regions, HomeRegion("CA-US"), "carbon-time", home="CA-US"
        )
        spatial = run_federated_simulation(
            workload, regions, SpatioTemporal(), "carbon-time", home="CA-US"
        )
        assert spatial.total_carbon_kg < home.total_carbon_kg
        assert spatial.migrated_jobs > 0

    def test_spatio_temporal_beats_greedy(self, workload, regions):
        greedy = run_federated_simulation(
            workload, regions, GreedySpatial(), "carbon-time", home="CA-US"
        )
        joint = run_federated_simulation(
            workload, regions, SpatioTemporal(), "carbon-time", home="CA-US"
        )
        assert joint.total_carbon_kg <= greedy.total_carbon_kg * 1.01

    def test_job_conservation(self, workload, regions):
        result = run_federated_simulation(
            workload, regions, SpatioTemporal(), "carbon-time", home="CA-US"
        )
        assert result.total_jobs == len(workload)
        assert sum(result.placements.values()) == len(workload)

    def test_migration_delay_penalizes(self, workload, regions):
        free = run_federated_simulation(
            workload, regions, SpatioTemporal(), "carbon-time", home="CA-US"
        )
        delayed = run_federated_simulation(
            workload, regions, SpatioTemporal(), "carbon-time", home="CA-US",
            migration_minutes=120,
        )
        # Delay shifts effective arrivals: completion moves out, so the
        # same placements finish later on average.
        assert delayed.total_jobs == free.total_jobs
        assert delayed.migrated_jobs == free.migrated_jobs

    def test_summary_keys(self, workload, regions):
        result = run_federated_simulation(
            workload, regions, LowestMeanCI(), "nowait", home="CA-US"
        )
        summary = result.summary()
        for key in ("selector", "carbon_kg", "cost_usd", "mean_wait_h"):
            assert key in summary

    def test_validation(self, workload, regions):
        with pytest.raises(ConfigError):
            run_federated_simulation(workload, [], HomeRegion("x"), "nowait")
        with pytest.raises(ConfigError):
            run_federated_simulation(
                workload, regions, HomeRegion("CA-US"), "nowait", home="nope"
            )
        with pytest.raises(ConfigError):
            run_federated_simulation(
                workload,
                [regions[0], regions[0]],
                HomeRegion("CA-US"),
                "nowait",
            )
