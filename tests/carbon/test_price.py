"""Electricity price synthesis and the carbon/cost conflict (Fig. 20)."""

import numpy as np
import pytest

from repro.carbon.price import (
    ElectricityPriceTrace,
    carbon_price_conflict_hours,
    correlated_price_trace,
    realized_correlation,
)
from repro.carbon.regions import region_trace
from repro.errors import ConfigError


@pytest.fixture
def ci():
    return region_trace("TX-US", num_hours=24 * 120)


class TestPriceTrace:
    def test_negatives_allowed(self):
        trace = ElectricityPriceTrace([-20.0, 50.0])
        assert trace.value_at(0) == -20.0


class TestCorrelatedGeneration:
    def test_hits_target_correlation(self, ci):
        price = correlated_price_trace(ci, target_correlation=0.16, seed=0)
        assert realized_correlation(ci, price) == pytest.approx(0.16, abs=0.05)

    def test_high_correlation(self, ci):
        price = correlated_price_trace(
            ci, target_correlation=0.9, spike_probability=0.0, seed=0
        )
        assert realized_correlation(ci, price) == pytest.approx(0.9, abs=0.05)

    def test_negative_correlation(self, ci):
        price = correlated_price_trace(
            ci, target_correlation=-0.5, spike_probability=0.0, seed=0
        )
        assert realized_correlation(ci, price) == pytest.approx(-0.5, abs=0.08)

    def test_deterministic(self, ci):
        a = correlated_price_trace(ci, seed=4)
        b = correlated_price_trace(ci, seed=4)
        np.testing.assert_array_equal(a.hourly, b.hourly)

    def test_length_matches_ci(self, ci):
        assert correlated_price_trace(ci).num_hours == ci.num_hours

    def test_rejects_bad_correlation(self, ci):
        with pytest.raises(ConfigError):
            correlated_price_trace(ci, target_correlation=1.5)

    def test_rejects_bad_spikes(self, ci):
        with pytest.raises(ConfigError):
            correlated_price_trace(ci, spike_probability=1.0)

    def test_rejects_constant_ci(self):
        from repro.carbon.trace import CarbonIntensityTrace

        flat = CarbonIntensityTrace([100.0] * 48)
        with pytest.raises(ConfigError):
            correlated_price_trace(flat)


class TestConflictMetric:
    def test_identical_series_no_conflict(self, ci):
        price = ElectricityPriceTrace(ci.hourly.copy())
        assert carbon_price_conflict_hours(ci, price) == 0.0

    def test_anticorrelated_conflicts(self, ci):
        price = ElectricityPriceTrace(-ci.hourly)
        assert carbon_price_conflict_hours(ci, price) > 0.5

    def test_weakly_correlated_conflicts_often(self, ci):
        price = correlated_price_trace(ci, target_correlation=0.16, seed=0)
        assert carbon_price_conflict_hours(ci, price) > 0.2
