"""Historical (non-oracle) forecaster."""

import numpy as np
import pytest

from repro.carbon.historical import HistoricalForecaster
from repro.carbon.regions import region_trace
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import TraceError
from repro.units import hours


def diurnal(days=20, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    day = 200.0 + 150.0 * np.sin(np.arange(24) / 24 * 2 * np.pi)
    values = np.tile(day, days)
    if noise:
        values = values * (1 + rng.normal(0, noise, size=values.size))
    return CarbonIntensityTrace(np.maximum(5.0, values), name="diurnal")


class TestSeasonalEstimate:
    def test_perfect_on_pure_diurnal(self):
        trace = diurnal()
        forecaster = HistoricalForecaster(trace, persistence_hours=0)
        now = hours(24 * 10)
        predicted = forecaster.slot_values(now, now + hours(5), 24)
        actual = trace.hourly[24 * 10 + 5 : 24 * 10 + 5 + 24]
        np.testing.assert_allclose(predicted, actual, rtol=1e-9)

    def test_never_reads_the_future(self):
        # Two traces identical up to hour 240, then divergent: forecasts
        # issued at hour 240 must be identical.
        base = diurnal(days=20).hourly.copy()
        altered = base.copy()
        altered[241:] *= 3.0
        f1 = HistoricalForecaster(CarbonIntensityTrace(base))
        f2 = HistoricalForecaster(CarbonIntensityTrace(altered))
        now = hours(240)
        # Forecast strictly future hours (lead >= 1 h).
        a = f1.slot_values(now, now + hours(1), 24)
        b = f2.slot_values(now, now + hours(1), 24)
        np.testing.assert_allclose(a, b)

    def test_observed_hours_are_truth(self):
        trace = diurnal(noise=0.3, seed=1)
        forecaster = HistoricalForecaster(trace)
        now = hours(24 * 8) + 30
        values = forecaster.slot_values(now, now - hours(3), 3)
        np.testing.assert_allclose(
            values, trace.hour_values((now - hours(3)) // 60, 3)
        )

    def test_cold_start_uses_persistence(self):
        trace = diurnal()
        forecaster = HistoricalForecaster(trace, persistence_hours=0)
        # At hour 0 there is no history at all: falls back to current.
        values = forecaster.slot_values(0, 0, 3)
        assert np.all(np.isfinite(values))

    def test_persistence_blends_short_leads(self):
        # A flat-history trace with a current spike: near-term forecasts
        # lean toward the spike, far leads toward the seasonal mean.
        values = np.full(24 * 10, 100.0)
        values[24 * 9] = 400.0  # the "current" hour spikes
        trace = CarbonIntensityTrace(values)
        forecaster = HistoricalForecaster(trace, persistence_hours=4)
        now = hours(24 * 9)
        forecast = forecaster.slot_values(now, now + hours(1), 6)
        assert forecast[0] > forecast[3] > 100.0 - 1e-9
        assert forecast[5] == pytest.approx(100.0)


class TestForecasterInterface:
    def test_interval_consistency(self):
        trace = diurnal(noise=0.2, seed=2)
        forecaster = HistoricalForecaster(trace)
        now = hours(24 * 9)
        starts = np.array([now + 90, now + 300])
        windows = forecaster.window_carbon_many(now, starts, 120)
        for start, window in zip(starts, windows):
            assert forecaster.interval_carbon(now, int(start), int(start) + 120) == (
                pytest.approx(window)
            )

    def test_mape_reasonable_on_real_region(self):
        forecaster = HistoricalForecaster(region_trace("CA-US"))
        mape = forecaster.mean_absolute_percentage_error(hours(24 * 30), 24)
        assert 0 < mape < 0.6  # seasonal-naive is coarse but sane

    def test_validation(self):
        trace = diurnal()
        with pytest.raises(TraceError):
            HistoricalForecaster(trace, history_days=0)
        with pytest.raises(TraceError):
            HistoricalForecaster(trace, persistence_hours=-1)
        forecaster = HistoricalForecaster(trace)
        with pytest.raises(TraceError):
            forecaster.interval_carbon(0, 10, 5)


class TestEndToEnd:
    def test_drives_carbon_time_without_oracle(self):
        from repro.simulator.simulation import run_simulation
        from repro.workload.sampling import week_long_trace
        from repro.workload.synthetic import alibaba_like
        from repro.units import days

        workload = week_long_trace(
            alibaba_like(5_000, horizon=days(40), seed=5), num_jobs=150
        )
        carbon = region_trace("SA-AU")
        baseline = run_simulation(workload, carbon, "nowait")
        oracle = run_simulation(workload, carbon, "carbon-time")
        historical = run_simulation(
            workload, carbon, "carbon-time",
            forecaster_factory=lambda trace: HistoricalForecaster(trace),
        )
        oracle_saving = oracle.carbon_savings_vs(baseline)
        historical_saving = historical.carbon_savings_vs(baseline)
        # The non-oracle forecaster captures most of the oracle's savings.
        assert historical_saving > 0.5 * oracle_saving
        assert historical_saving <= oracle_saving + 0.02
