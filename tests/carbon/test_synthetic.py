"""Synthetic carbon-trace generation."""

import numpy as np
import pytest

from repro.carbon.synthetic import RegionProfile, generate_carbon_trace
from repro.errors import ConfigError


def profile(**overrides) -> RegionProfile:
    base = dict(
        name="test",
        mean_ci=200.0,
        diurnal_amplitude=0.4,
        seasonal_amplitude=0.2,
        noise_sigma=0.1,
    )
    base.update(overrides)
    return RegionProfile(**base)


class TestRegionProfile:
    def test_labels(self):
        assert profile(mean_ci=50).level_label == "Low"
        assert profile(mean_ci=300).level_label == "Med"
        assert profile(mean_ci=800).level_label == "High"

    def test_variability_labels(self):
        flat = profile(diurnal_amplitude=0.05, noise_sigma=0.05)
        assert flat.variability_label == "Stable"
        assert profile().variability_label == "Variable"

    def test_rejects_bad_mean(self):
        with pytest.raises(ConfigError):
            profile(mean_ci=0)

    def test_rejects_amplitude_out_of_range(self):
        with pytest.raises(ConfigError):
            profile(diurnal_amplitude=1.5)
        with pytest.raises(ConfigError):
            profile(noise_sigma=-0.1)

    def test_rejects_bad_half_life(self):
        with pytest.raises(ConfigError):
            profile(noise_half_life_hours=0)


class TestGeneration:
    def test_length_and_positivity(self):
        trace = generate_carbon_trace(profile(), num_hours=500, seed=3)
        assert trace.num_hours == 500
        assert np.all(trace.hourly >= profile().floor_ci)

    def test_deterministic_under_seed(self):
        a = generate_carbon_trace(profile(), num_hours=200, seed=7)
        b = generate_carbon_trace(profile(), num_hours=200, seed=7)
        np.testing.assert_array_equal(a.hourly, b.hourly)

    def test_seed_changes_noise(self):
        a = generate_carbon_trace(profile(), num_hours=200, seed=1)
        b = generate_carbon_trace(profile(), num_hours=200, seed=2)
        assert not np.array_equal(a.hourly, b.hourly)

    def test_regions_draw_independent_weather(self):
        a = generate_carbon_trace(profile(name="r1"), num_hours=200, seed=1)
        b = generate_carbon_trace(profile(name="r2"), num_hours=200, seed=1)
        assert not np.array_equal(a.hourly, b.hourly)

    def test_mean_close_to_profile(self):
        trace = generate_carbon_trace(profile(), num_hours=24 * 365, seed=0)
        assert trace.hourly.mean() == pytest.approx(200.0, rel=0.1)

    def test_diurnal_cycle_present(self):
        trace = generate_carbon_trace(
            profile(noise_sigma=0.0, seasonal_amplitude=0.0), num_hours=24 * 30, seed=0
        )
        byday = trace.hourly.reshape(30, 24)
        hourly_mean = byday.mean(axis=0)
        peak_hour = int(hourly_mean.argmax())
        assert abs(peak_hour - 19) <= 1  # default diurnal peak at 19h

    def test_flat_profile_is_flat(self):
        flat = profile(diurnal_amplitude=0.0, seasonal_amplitude=0.0, noise_sigma=0.0)
        trace = generate_carbon_trace(flat, num_hours=100, seed=0)
        np.testing.assert_allclose(trace.hourly, 200.0)

    def test_seasonal_phase_offset(self):
        prof = profile(noise_sigma=0.0, diurnal_amplitude=0.0, seasonal_peak_day=0.0)
        january = generate_carbon_trace(prof, num_hours=24 * 30, seed=0)
        july = generate_carbon_trace(
            prof, num_hours=24 * 30, seed=0, start_hour_of_year=24 * 182
        )
        assert january.hourly.mean() > july.hourly.mean()

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ConfigError):
            generate_carbon_trace(profile(), num_hours=0)

    def test_noise_is_persistent(self):
        """OU noise should be positively autocorrelated hour to hour."""
        trace = generate_carbon_trace(
            profile(diurnal_amplitude=0.0, seasonal_amplitude=0.0, noise_sigma=0.3),
            num_hours=2000,
            seed=5,
        )
        x = trace.hourly - trace.hourly.mean()
        autocorr = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert autocorr > 0.5
