"""Published carbon-data format loaders."""

import json

import pytest

from repro.carbon.loaders import load_electricitymaps_csv, load_watttime_json
from repro.errors import TraceError


class TestElectricityMaps:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "em.csv"
        path.write_text(
            "datetime,zone,carbon_intensity_avg\n"
            "2022-01-01T00:00:00Z,CA,200\n"
            "2022-01-01T01:00:00Z,CA,210\n"
            "2022-01-01T02:00:00Z,CA,190\n"
        )
        trace = load_electricitymaps_csv(str(path), name="CA")
        assert trace.num_hours == 3
        assert trace.ci_at(61) == 210.0
        assert trace.name == "CA"

    def test_alternate_column_names(self, tmp_path):
        path = tmp_path / "em.csv"
        path.write_text(
            "timestamp,carbonIntensity\n"
            "2022-01-01T00:00:00+00:00,150\n"
            "2022-01-01T01:00:00+00:00,160\n"
        )
        assert load_electricitymaps_csv(str(path)).num_hours == 2

    def test_short_gap_carried_forward(self, tmp_path):
        path = tmp_path / "em.csv"
        path.write_text(
            "datetime,carbon_intensity\n"
            "2022-01-01T00:00:00Z,100\n"
            "2022-01-01T03:00:00Z,400\n"
        )
        trace = load_electricitymaps_csv(str(path))
        assert trace.num_hours == 4
        assert trace.ci_at(60) == 100.0   # carried forward
        assert trace.ci_at(181) == 400.0

    def test_long_gap_rejected(self, tmp_path):
        path = tmp_path / "em.csv"
        path.write_text(
            "datetime,carbon_intensity\n"
            "2022-01-01T00:00:00Z,100\n"
            "2022-01-10T00:00:00Z,100\n"
        )
        with pytest.raises(TraceError):
            load_electricitymaps_csv(str(path))

    def test_unsorted_input_sorted(self, tmp_path):
        path = tmp_path / "em.csv"
        path.write_text(
            "datetime,carbon_intensity\n"
            "2022-01-01T01:00:00Z,210\n"
            "2022-01-01T00:00:00Z,200\n"
        )
        trace = load_electricitymaps_csv(str(path))
        assert trace.ci_at(0) == 200.0

    def test_blank_values_skipped(self, tmp_path):
        path = tmp_path / "em.csv"
        path.write_text(
            "datetime,carbon_intensity\n"
            "2022-01-01T00:00:00Z,100\n"
            "2022-01-01T01:00:00Z,\n"
            "2022-01-01T02:00:00Z,120\n"
        )
        trace = load_electricitymaps_csv(str(path))
        assert trace.num_hours == 3
        assert trace.ci_at(70) == 100.0  # gap filled by carry-forward

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "em.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError):
            load_electricitymaps_csv(str(path))

    def test_duplicate_hours_rejected(self, tmp_path):
        path = tmp_path / "em.csv"
        path.write_text(
            "datetime,carbon_intensity\n"
            "2022-01-01T00:00:00Z,100\n"
            "2022-01-01T00:00:00Z,110\n"
        )
        with pytest.raises(TraceError):
            load_electricitymaps_csv(str(path))


class TestWattTime:
    def test_basic_load(self, tmp_path):
        path = tmp_path / "wt.json"
        payload = [
            {"point_time": "2022-01-01T00:00:00Z", "value": 1000.0},
            {"point_time": "2022-01-01T01:00:00Z", "value": 2000.0},
        ]
        path.write_text(json.dumps(payload))
        trace = load_watttime_json(str(path), name="wt")
        assert trace.num_hours == 2
        # 1000 lbs/MWh = 453.592 g/kWh
        assert trace.ci_at(0) == pytest.approx(453.592)

    def test_sorted_by_time(self, tmp_path):
        path = tmp_path / "wt.json"
        payload = [
            {"point_time": "2022-01-01T01:00:00Z", "value": 2000.0},
            {"point_time": "2022-01-01T00:00:00Z", "value": 1000.0},
        ]
        path.write_text(json.dumps(payload))
        trace = load_watttime_json(str(path))
        assert trace.ci_at(0) == pytest.approx(453.592)

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "wt.json"
        path.write_text(json.dumps([{"oops": 1}]))
        with pytest.raises(TraceError):
            load_watttime_json(str(path))

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "wt.json"
        path.write_text("[]")
        with pytest.raises(TraceError):
            load_watttime_json(str(path))
