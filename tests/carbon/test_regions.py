"""Canonical region profiles (the paper's Fig. 6 categories)."""

import pytest

from repro.carbon.regions import PAPER_REGIONS, REGION_PROFILES, get_region, region_trace
from repro.errors import ConfigError


class TestRegistry:
    def test_paper_regions_exist(self):
        for name in PAPER_REGIONS:
            assert name in REGION_PROFILES

    def test_get_region_unknown(self):
        with pytest.raises(ConfigError):
            get_region("MOON")

    def test_texas_for_fig20(self):
        assert get_region("TX-US").mean_ci > 0


class TestCategories:
    """The synthetic profiles must land in the paper's level/variability cells."""

    def test_sweden_low_stable(self):
        profile = get_region("SE")
        assert profile.level_label == "Low"
        assert profile.variability_label == "Stable"

    def test_kentucky_high_stable(self):
        profile = get_region("KY-US")
        assert profile.level_label == "High"
        assert profile.variability_label == "Stable"

    def test_middle_regions_variable(self):
        for name in ("SA-AU", "CA-US", "NL", "ON-CA"):
            assert get_region(name).variability_label == "Variable"

    def test_level_ordering_matches_fig6(self):
        means = [get_region(name).mean_ci for name in PAPER_REGIONS]
        assert means == sorted(means)

    def test_sa_has_largest_relative_variation(self):
        """Paper: South Australia has the highest variation of the regions."""
        sa = get_region("SA-AU")
        sa_swing = sa.diurnal_amplitude + sa.noise_sigma + sa.seasonal_amplitude
        for name in PAPER_REGIONS:
            if name == "SA-AU":
                continue
            other = get_region(name)
            swing = other.diurnal_amplitude + other.noise_sigma + other.seasonal_amplitude
            assert sa_swing >= swing


class TestRegionTrace:
    def test_cached_identity(self):
        assert region_trace("SE", num_hours=48) is region_trace("SE", num_hours=48)

    def test_year_default(self):
        assert region_trace("SE").num_hours == 365 * 24

    def test_trace_name_matches(self):
        assert region_trace("NL", num_hours=24).name == "NL"
