"""Carbon-trace statistics behind Figs. 1, 6, 7."""

import numpy as np
import pytest

from repro.carbon import stats
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import TraceError


class TestTemporalVariation:
    def test_known_ratio(self):
        day = [100.0] * 12 + [50.0] * 12
        trace = CarbonIntensityTrace(day * 3)
        assert stats.temporal_variation(trace) == pytest.approx(2.0)


class TestSpatialVariation:
    def test_constant_traces(self):
        a = CarbonIntensityTrace([100.0] * 24, name="a")
        b = CarbonIntensityTrace([300.0] * 24, name="b")
        assert stats.spatial_variation([a, b]) == pytest.approx(3.0)

    def test_uses_overlap_only(self):
        a = CarbonIntensityTrace([100.0, 100.0], name="a")
        b = CarbonIntensityTrace([200.0, 200.0, 900.0], name="b")
        assert stats.spatial_variation([a, b]) == pytest.approx(2.0)

    def test_needs_two(self):
        with pytest.raises(TraceError):
            stats.spatial_variation([CarbonIntensityTrace([1.0])])


class TestMonthlyMeans:
    def test_year_layout(self):
        values = np.concatenate([np.full(31 * 24, 10.0), np.full(8036, 20.0)])
        trace = CarbonIntensityTrace(values)
        means = stats.monthly_means(trace)
        assert len(means) == 12
        assert means[0] == pytest.approx(10.0)
        assert means[1] == pytest.approx(20.0)

    def test_needs_full_year(self):
        with pytest.raises(TraceError):
            stats.monthly_means(CarbonIntensityTrace([1.0] * 100))


class TestPercentileThreshold:
    def test_basic(self):
        assert stats.percentile_threshold(np.arange(101.0), 30) == pytest.approx(30.0)

    def test_empty(self):
        with pytest.raises(TraceError):
            stats.percentile_threshold(np.array([]), 30)

    def test_out_of_range(self):
        with pytest.raises(TraceError):
            stats.percentile_threshold(np.array([1.0]), 150)


class TestCorrelationAndCov:
    def test_perfect_correlation(self):
        a = CarbonIntensityTrace([1.0, 2.0, 3.0, 4.0])
        b = CarbonIntensityTrace([2.0, 4.0, 6.0, 8.0])
        assert stats.correlation(a, b) == pytest.approx(1.0)

    def test_constant_rejected(self):
        a = CarbonIntensityTrace([1.0, 1.0])
        b = CarbonIntensityTrace([1.0, 2.0])
        with pytest.raises(TraceError):
            stats.correlation(a, b)

    def test_cov(self):
        trace = CarbonIntensityTrace([50.0, 150.0])
        assert stats.coefficient_of_variation(trace) == pytest.approx(0.5)

    def test_mean_levels_keyed_by_name(self):
        a = CarbonIntensityTrace([10.0], name="a")
        assert stats.mean_levels([a]) == {"a": 10.0}
