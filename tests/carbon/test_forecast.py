"""Forecaster behaviour: perfect oracle and lead-dependent noise."""

import numpy as np
import pytest

from repro.carbon.forecast import NoisyForecaster, PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import TraceError


@pytest.fixture
def trace():
    rng = np.random.default_rng(1)
    return CarbonIntensityTrace(rng.uniform(50, 400, size=96), name="t")


class TestPerfectForecaster:
    def test_slot_values_are_truth(self, trace):
        forecaster = PerfectForecaster(trace)
        np.testing.assert_array_equal(
            forecaster.slot_values(0, 120, 4), trace.hourly[2:6]
        )

    def test_interval_matches_trace(self, trace):
        forecaster = PerfectForecaster(trace)
        assert forecaster.interval_carbon(0, 30, 300) == trace.interval_carbon(30, 300)

    def test_window_many_matches_trace(self, trace):
        forecaster = PerfectForecaster(trace)
        starts = np.array([0, 60, 125])
        np.testing.assert_allclose(
            forecaster.window_carbon_many(0, starts, 90),
            trace.window_carbon_many(starts, 90),
        )

    def test_now_is_ignored(self, trace):
        forecaster = PerfectForecaster(trace)
        assert forecaster.interval_carbon(0, 0, 60) == forecaster.interval_carbon(
            5000, 0, 60
        )


class TestNoisyForecaster:
    def test_zero_lead_is_truth(self, trace):
        forecaster = NoisyForecaster(trace, sigma=0.5, seed=3)
        # Forecasting the current hour has zero lead, hence zero error.
        now = 90
        value = forecaster.slot_values(now, now, 1)[0]
        assert value == pytest.approx(trace.ci_at(now))

    def test_error_grows_with_lead(self, trace):
        forecaster = NoisyForecaster(trace, sigma=0.5, seed=3)
        near = forecaster.slot_values(0, 0, 48)
        errors = np.abs(near - trace.hourly[:48]) / trace.hourly[:48]
        # Mean error over the second day must exceed the first hour's.
        assert errors[24:].mean() > errors[0]

    def test_sigma_zero_is_perfect(self, trace):
        forecaster = NoisyForecaster(trace, sigma=0.0, seed=3)
        np.testing.assert_allclose(
            forecaster.slot_values(0, 0, 48), trace.hourly[:48]
        )

    def test_deterministic(self, trace):
        a = NoisyForecaster(trace, sigma=0.3, seed=9)
        b = NoisyForecaster(trace, sigma=0.3, seed=9)
        np.testing.assert_array_equal(
            a.slot_values(0, 0, 24), b.slot_values(0, 0, 24)
        )

    def test_forecast_never_negative(self, trace):
        forecaster = NoisyForecaster(trace, sigma=3.0 - 2.9, seed=0)
        assert np.all(forecaster.slot_values(0, 0, 96) >= 0)

    def test_interval_consistent_with_windows(self, trace):
        forecaster = NoisyForecaster(trace, sigma=0.4, seed=2)
        starts = np.array([70, 200])
        windows = forecaster.window_carbon_many(10, starts, 120)
        for start, window in zip(starts, windows):
            assert forecaster.interval_carbon(10, int(start), int(start) + 120) == (
                pytest.approx(window)
            )

    def test_interval_converges_as_now_advances(self, trace):
        """Forecasts for a fixed hour approach truth as it gets closer."""
        forecaster = NoisyForecaster(trace, sigma=0.8, seed=4)
        target = 48 * 60
        truth = trace.interval_carbon(target, target + 60)
        early = abs(forecaster.interval_carbon(0, target, target + 60) - truth)
        late = abs(forecaster.interval_carbon(target, target, target + 60) - truth)
        assert late <= early

    def test_rejects_negative_sigma(self, trace):
        with pytest.raises(TraceError):
            NoisyForecaster(trace, sigma=-0.1)

    def test_rejects_interval_beyond_horizon(self, trace):
        forecaster = NoisyForecaster(trace, sigma=0.1)
        with pytest.raises(TraceError):
            forecaster.interval_carbon(0, 0, trace.horizon_minutes + 60)

    def test_empty_interval(self, trace):
        forecaster = NoisyForecaster(trace, sigma=0.1)
        assert forecaster.interval_carbon(0, 100, 100) == 0.0

    def test_empty_window_array(self, trace):
        forecaster = NoisyForecaster(trace, sigma=0.1)
        assert forecaster.window_carbon_many(0, np.array([], dtype=int), 60).size == 0
