"""CarbonIntensityTrace / HourlySeries behaviour."""

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace, HourlySeries, align_horizons
from repro.errors import TraceError


class TestConstruction:
    def test_basic(self):
        trace = CarbonIntensityTrace([100.0, 200.0], name="x")
        assert trace.num_hours == 2
        assert trace.horizon_minutes == 120
        assert trace.name == "x"

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            CarbonIntensityTrace([])

    def test_rejects_negative_ci(self):
        with pytest.raises(TraceError):
            CarbonIntensityTrace([100.0, -1.0])

    def test_rejects_nan(self):
        with pytest.raises(TraceError):
            CarbonIntensityTrace([100.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(TraceError):
            CarbonIntensityTrace(np.ones((2, 2)))

    def test_hourly_is_readonly(self):
        trace = CarbonIntensityTrace([100.0])
        with pytest.raises(ValueError):
            trace.hourly[0] = 5.0

    def test_input_not_aliased(self):
        source = np.array([100.0, 200.0])
        trace = CarbonIntensityTrace(source)
        source[0] = 1.0
        assert trace.ci_at(0) == 100.0

    def test_price_series_allows_negative(self):
        series = HourlySeries([-10.0, 5.0])
        assert series.value_at(0) == -10.0


class TestPointAccess:
    def test_ci_at_hour_boundaries(self):
        trace = CarbonIntensityTrace([100.0, 200.0, 300.0])
        assert trace.ci_at(0) == 100.0
        assert trace.ci_at(59) == 100.0
        assert trace.ci_at(60) == 200.0
        assert trace.ci_at(179) == 300.0

    def test_ci_at_out_of_range(self):
        trace = CarbonIntensityTrace([100.0])
        with pytest.raises(TraceError):
            trace.ci_at(60)
        with pytest.raises(TraceError):
            trace.ci_at(-1)

    def test_hour_values_clips(self):
        trace = CarbonIntensityTrace([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(trace.hour_values(1, 10), [2.0, 3.0])

    def test_hour_values_bad_start(self):
        trace = CarbonIntensityTrace([1.0])
        with pytest.raises(TraceError):
            trace.hour_values(5, 1)


class TestIntegration:
    def test_full_hour(self):
        trace = CarbonIntensityTrace([100.0, 200.0])
        assert trace.interval_carbon(0, 60) == pytest.approx(100.0)

    def test_partial_hour(self):
        trace = CarbonIntensityTrace([100.0, 200.0])
        assert trace.interval_carbon(0, 30) == pytest.approx(50.0)

    def test_spanning_hours(self):
        trace = CarbonIntensityTrace([100.0, 200.0])
        # 30 min at 100 + 30 min at 200 = 50 + 100 value-hours
        assert trace.interval_carbon(30, 90) == pytest.approx(150.0)

    def test_empty_interval(self):
        trace = CarbonIntensityTrace([100.0])
        assert trace.interval_carbon(30, 30) == 0.0

    def test_inverted_interval_rejected(self):
        trace = CarbonIntensityTrace([100.0])
        with pytest.raises(TraceError):
            trace.interval_carbon(30, 10)

    def test_end_beyond_horizon_rejected(self):
        trace = CarbonIntensityTrace([100.0])
        with pytest.raises(TraceError):
            trace.interval_carbon(0, 61)

    def test_integrate_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        trace = CarbonIntensityTrace(rng.uniform(10, 500, size=48))
        starts = np.arange(0, 24 * 60, 7)
        vectorized = trace.window_carbon_many(starts, 180)
        scalar = [trace.interval_carbon(s, s + 180) for s in starts]
        np.testing.assert_allclose(vectorized, scalar)

    def test_integrate_many_out_of_range(self):
        trace = CarbonIntensityTrace([100.0])
        with pytest.raises(TraceError):
            trace.window_carbon_many(np.array([30]), 60)

    def test_mean_over(self):
        trace = CarbonIntensityTrace([100.0, 200.0])
        assert trace.mean_over(0, 120) == pytest.approx(150.0)

    def test_mean_over_empty(self):
        trace = CarbonIntensityTrace([100.0])
        with pytest.raises(TraceError):
            trace.mean_over(10, 10)


class TestTransformations:
    def test_slice_hours(self):
        trace = CarbonIntensityTrace([1.0, 2.0, 3.0], name="t")
        sliced = trace.slice_hours(1, 2)
        np.testing.assert_array_equal(sliced.hourly, [2.0, 3.0])
        assert isinstance(sliced, CarbonIntensityTrace)
        assert sliced.name == "t"

    def test_slice_too_long(self):
        trace = CarbonIntensityTrace([1.0, 2.0])
        with pytest.raises(TraceError):
            trace.slice_hours(1, 5)

    def test_tile_to(self):
        trace = CarbonIntensityTrace([1.0, 2.0])
        tiled = trace.tile_to(5)
        np.testing.assert_array_equal(tiled.hourly, [1.0, 2.0, 1.0, 2.0, 1.0])

    def test_tile_to_shorter_slices(self):
        trace = CarbonIntensityTrace([1.0, 2.0, 3.0])
        assert trace.tile_to(2).num_hours == 2

    def test_scaled(self):
        trace = CarbonIntensityTrace([10.0])
        assert trace.scaled(2.5).ci_at(0) == 25.0

    def test_daily_min_max_ratio(self):
        day = [100.0] * 12 + [25.0] * 12
        trace = CarbonIntensityTrace(day * 2)
        assert trace.daily_min_max_ratio() == pytest.approx(4.0)

    def test_daily_ratio_needs_a_day(self):
        trace = CarbonIntensityTrace([100.0] * 10)
        with pytest.raises(TraceError):
            trace.daily_min_max_ratio()


class TestPersistence:
    def test_csv_roundtrip(self, tmp_path):
        trace = CarbonIntensityTrace([100.5, 200.25, 0.125], name="rt")
        path = str(tmp_path / "trace.csv")
        trace.to_csv(path)
        loaded = CarbonIntensityTrace.from_csv(path, name="rt")
        np.testing.assert_array_equal(loaded.hourly, trace.hourly)

    def test_csv_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError):
            CarbonIntensityTrace.from_csv(str(path))


class TestAlignHorizons:
    def test_tiles_all(self):
        traces = [
            CarbonIntensityTrace([1.0, 2.0], name="a"),
            CarbonIntensityTrace([3.0] * 5, name="b"),
        ]
        aligned = align_horizons(traces, minutes=4 * 60)
        assert all(t.num_hours == 4 for t in aligned)
