"""Runner recovery under process faults: retries, timeouts, pool respawns.

These tests poison specs with ``worker-*`` faults (which sabotage the
worker process itself) and assert the ISSUE's graceful-degradation
contract: a sweep with a few bad specs returns every good result plus a
structured failure report, never a bare stack trace or a lost batch.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import SweepError
from repro.faults import parse_fault_plan
from repro.simulator.runner import (
    RunStats,
    SimulationSpec,
    SpecFailure,
    resolve_retries,
    resolve_timeout,
    run_many,
)
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture
def carbon():
    return CarbonIntensityTrace(np.linspace(100.0, 300.0, 48), name="ramp")


@pytest.fixture
def workload():
    jobs = [Job(job_id=i, arrival=i * 30, length=60, cpus=1) for i in range(4)]
    return WorkloadTrace(jobs, name="runner-chaos")


def make_spec(workload, carbon, spot_seed=0, plan_text=None):
    """One small spec, optionally poisoned by a fault plan."""
    plan = (
        parse_fault_plan(plan_text, seed=CHAOS_SEED) if plan_text is not None else None
    )
    return SimulationSpec.build(
        workload, carbon, "nowait", spot_seed=spot_seed, fault_plan=plan
    )


class TestGracefulDegradation:
    def test_sixteen_specs_two_poisoned_returns_fourteen(self, workload, carbon):
        """The ISSUE's acceptance scenario: a 16-spec sweep with one
        worker-crashing spec and one hanging spec returns the 14 good
        results, a structured report for the 2 bad ones, and recovery
        counters in the stats metrics."""
        specs = []
        for index in range(16):
            plan_text = None
            if index == 5:
                plan_text = "worker-crash"
            elif index == 11:
                plan_text = "worker-hang:seconds=30"
            specs.append(make_spec(workload, carbon, spot_seed=index, plan_text=plan_text))

        stats = RunStats()
        results = run_many(
            specs,
            jobs=4,
            use_cache=False,
            stats=stats,
            retries=1,
            timeout=3.0,
            backoff=0.0,
            on_error="partial",
        )
        assert len(results) == 16
        good = [index for index, result in enumerate(results) if result is not None]
        assert len(good) == 14
        assert {index for index in range(16) if index not in good} == {5, 11}

        by_index = {failure.index: failure for failure in stats.failures}
        assert set(by_index) == {5, 11}
        assert by_index[5].error_type == "WorkerCrash"
        assert by_index[11].error_type == "TimeoutError"
        assert all(failure.attempts == 2 for failure in stats.failures)  # 1 retry each
        assert stats.failed == 2
        assert stats.retries == 2
        assert stats.timeouts >= 2
        assert stats.pool_respawns >= 2
        counters = stats.metrics["counters"]
        assert counters["runner.failed"] == 2.0
        assert counters["runner.retries"] == 2.0
        assert counters["runner.pool_respawns"] == stats.pool_respawns

    def test_raise_mode_attaches_partial_results(self, workload, carbon):
        """Regression: a failure must not discard the completed results
        -- SweepError carries them alongside the failure report."""
        specs = [make_spec(workload, carbon, spot_seed=index) for index in range(3)]
        specs.append(make_spec(workload, carbon, plan_text="worker-fail"))
        with pytest.raises(SweepError) as excinfo:
            run_many(specs, jobs=2, use_cache=False, backoff=0.0)
        error = excinfo.value
        assert len(error.results) == 4
        assert sum(result is not None for result in error.results) == 3
        assert [failure.index for failure in error.failures] == [3]
        assert error.failures[0].error_type == "RuntimeError"

    def test_failed_digest_aliases_share_the_failure(self, workload, carbon):
        """In-batch duplicates of a failed spec each get a report entry."""
        bad = make_spec(workload, carbon, plan_text="worker-fail")
        stats = RunStats()
        results = run_many(
            [bad, bad], jobs=1, use_cache=False, stats=stats,
            backoff=0.0, on_error="partial",
        )
        assert results == [None, None]
        assert [failure.index for failure in stats.failures] == [0, 1]
        assert stats.deduplicated == 1


class TestRetries:
    def test_flaky_spec_heals_within_retry_budget(self, workload, carbon, tmp_path):
        marker = tmp_path / "flaky-marker"
        spec = make_spec(
            workload, carbon, plan_text=f"worker-flaky:path={marker},times=1"
        )
        stats = RunStats()
        results = run_many(
            [spec], jobs=2, use_cache=False, stats=stats, retries=1, backoff=0.0
        )
        assert results[0] is not None
        assert stats.retries == 1
        assert stats.failed == 0

    def test_serial_path_retries_too(self, workload, carbon, tmp_path):
        marker = tmp_path / "flaky-serial"
        spec = make_spec(
            workload, carbon, plan_text=f"worker-flaky:path={marker},times=2"
        )
        stats = RunStats()
        results = run_many(
            [spec], jobs=1, use_cache=False, stats=stats, retries=2, backoff=0.0
        )
        assert results[0] is not None
        assert stats.retries == 2

    def test_repro_errors_fail_fast_without_burning_retries(self, workload, carbon):
        """Deterministic domain errors (here: a NaN trace rejected with
        TraceError) are never retried, whatever the budget."""
        spec = make_spec(workload, carbon, plan_text="trace-nan:count=2")
        stats = RunStats()
        results = run_many(
            [spec], jobs=1, use_cache=False, stats=stats,
            retries=5, backoff=0.0, on_error="partial",
        )
        assert results[0] is None
        assert stats.retries == 0
        failure = stats.failures[0]
        assert failure.error_type == "TraceError"
        assert failure.attempts == 1

    def test_exhausted_retries_report_every_attempt(self, workload, carbon):
        spec = make_spec(workload, carbon, plan_text="worker-fail")
        stats = RunStats()
        run_many(
            [spec], jobs=1, use_cache=False, stats=stats,
            retries=2, backoff=0.0, on_error="partial",
        )
        assert stats.retries == 2
        assert stats.failures[0].attempts == 3  # initial + 2 retries


class TestCrashIsolation:
    def test_innocent_inflight_specs_survive_a_worker_crash(self, workload, carbon):
        """A crash breaks the whole pool; the specs that merely shared it
        must be re-run uncharged and succeed."""
        specs = [make_spec(workload, carbon, spot_seed=index) for index in range(6)]
        specs[2] = make_spec(workload, carbon, plan_text="worker-crash")
        stats = RunStats()
        results = run_many(
            specs, jobs=3, use_cache=False, stats=stats,
            backoff=0.0, on_error="partial",
        )
        assert sum(result is not None for result in results) == 5
        assert results[2] is None
        assert [failure.error_type for failure in stats.failures] == ["WorkerCrash"]
        assert stats.pool_respawns >= 1


class TestReproducibility:
    def test_identical_fault_plans_reproduce_across_pool_runs(self, workload, carbon):
        plan_text = "eviction-storm:rate=0.5,start_hour=0,hours=24"
        spec = SimulationSpec.build(
            workload,
            carbon,
            "spot-first:nowait",
            fault_plan=parse_fault_plan(plan_text, seed=CHAOS_SEED),
        )
        first = run_many([spec], jobs=2, timeout=60.0, use_cache=False)
        second = run_many([spec], jobs=2, timeout=60.0, use_cache=False)
        assert first[0].digest() == second[0].digest()

    def test_faulted_specs_cache_like_clean_ones(self, workload, carbon):
        from repro.simulator.runner import ResultCache

        spec = make_spec(
            workload, carbon, plan_text="eviction-storm:rate=0.3,hours=6"
        )
        cache = ResultCache()
        cold_stats, warm_stats = RunStats(), RunStats()
        run_many([spec], jobs=1, cache=cache, stats=cold_stats)
        run_many([spec], jobs=1, cache=cache, stats=warm_stats)
        assert cold_stats.executed == 1
        assert warm_stats.cache_hits == 1

    def test_failed_specs_are_never_cached(self, workload, carbon):
        from repro.simulator.runner import ResultCache

        spec = make_spec(workload, carbon, plan_text="worker-fail")
        cache = ResultCache()
        for _ in range(2):
            stats = RunStats()
            run_many(
                [spec], jobs=1, cache=cache, stats=stats,
                backoff=0.0, on_error="partial",
            )
            assert stats.cache_hits == 0
            assert stats.failed == 1


class TestConfigResolution:
    def test_retries_and_timeout_resolve_from_env(self):
        env = {"REPRO_RETRIES": "3", "REPRO_TIMEOUT": "2.5"}
        assert resolve_retries(None, environ=env) == 3
        assert resolve_timeout(None, environ=env) == 2.5
        assert resolve_retries(None, environ={}) == 0
        assert resolve_timeout(None, environ={}) is None
        assert resolve_retries(1, environ=env) == 1  # explicit wins
        assert resolve_timeout(9.0, environ=env) == 9.0

    def test_spec_failure_is_frozen_and_reportable(self):
        failure = SpecFailure(
            index=4, digest="ab" * 32, error_type="RuntimeError",
            message="boom", attempts=2,
        )
        with pytest.raises(AttributeError):
            failure.index = 5  # type: ignore[misc]
        assert "RuntimeError" in repr(failure)
