"""Golden-scenario snapshots: pinned result digests for small clean runs.

Six small fault-free scenarios have their ``SimulationResult.digest()``
committed in ``golden/digests.json``.  Any change to these digests means
simulation *behaviour* moved -- either an intentional semantic change
(regenerate the fixture and say so in the PR) or an accidental
regression this test just caught.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m tests.faults.test_golden

which rewrites ``golden/digests.json`` in place.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.spot import HourlyHazard
from repro.simulator.simulation import run_simulation
from repro.units import days, hours
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

GOLDEN_PATH = Path(__file__).parent / "golden" / "digests.json"


def _workload() -> WorkloadTrace:
    """The fixed five-job workload every golden scenario runs."""
    jobs = [
        Job(job_id=0, arrival=0, length=60, cpus=1),
        Job(job_id=1, arrival=30, length=hours(4), cpus=2),
        Job(job_id=2, arrival=hours(2), length=hours(1), cpus=1),
        Job(job_id=3, arrival=hours(10), length=hours(12), cpus=4),
        Job(job_id=4, arrival=hours(30), length=90, cpus=1),
    ]
    return WorkloadTrace(jobs, name="golden", horizon=days(2))


def _flat() -> CarbonIntensityTrace:
    return CarbonIntensityTrace(np.full(240, 100.0), name="flat")


def _diurnal() -> CarbonIntensityTrace:
    day = np.full(24, 100.0)
    day[10:16] = 20.0
    return CarbonIntensityTrace(np.tile(day, 14), name="diurnal")


#: name -> zero-argument scenario runner.  Inputs are rebuilt per call so
#: scenarios cannot leak state into each other.
SCENARIOS = {
    "nowait-flat": lambda: run_simulation(_workload(), _flat(), "nowait"),
    "wait-awhile-diurnal": lambda: run_simulation(
        _workload(), _diurnal(), "wait-awhile"
    ),
    "lowest-slot-diurnal": lambda: run_simulation(
        _workload(), _diurnal(), "lowest-slot", granularity=15
    ),
    "carbon-time-diurnal": lambda: run_simulation(
        _workload(), _diurnal(), "carbon-time"
    ),
    "spot-first-evictions": lambda: run_simulation(
        _workload(),
        _diurnal(),
        "spot-first:nowait",
        eviction_model=HourlyHazard(0.05),
        spot_seed=7,
    ),
    "res-first-reserved-pool": lambda: run_simulation(
        _workload(), _diurnal(), "res-first:carbon-time", reserved_cpus=2
    ),
}


def compute_digests() -> dict[str, str]:
    """Run every scenario and return its result digest."""
    return {name: runner().digest() for name, runner in sorted(SCENARIOS.items())}


class TestGoldenScenarios:
    @pytest.fixture(scope="class")
    def pinned(self) -> dict[str, str]:
        return json.loads(GOLDEN_PATH.read_text())

    def test_fixture_covers_exactly_the_scenarios(self, pinned):
        assert set(pinned) == set(SCENARIOS)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_digest_matches_pin(self, name, pinned):
        assert SCENARIOS[name]().digest() == pinned[name], (
            f"golden scenario {name!r} moved; if intentional, regenerate "
            "with: PYTHONPATH=src python -m tests.faults.test_golden"
        )


def _regenerate() -> None:
    """Rewrite the committed fixture from the current code's behaviour."""
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_digests(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover - fixture regeneration entry
    _regenerate()
