"""Property-based robustness invariants (hypothesis).

Whatever small workload, policy, and (survivable) fault plan hypothesis
draws, a completed simulation must report finite, non-negative totals,
account every submitted job, and reproduce bit-identically under the
same fault-plan seed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.trace import CarbonIntensityTrace
from repro.faults import FaultPlan, FaultSpec, parse_fault_plan
from repro.simulator.simulation import run_simulation
from repro.units import hours
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

POLICIES = ("nowait", "wait-awhile", "lowest-slot")

ci_values = st.lists(
    st.floats(min_value=1.0, max_value=2000.0, allow_nan=False, allow_infinity=False),
    min_size=30,
    max_size=72,
)

#: Survivable fault plans only -- typed-rejection faults (trace-nan) and
#: process faults have their own targeted tests in test_chaos.py.
survivable_plans = st.one_of(
    st.none(),
    st.builds(
        lambda rate, start, length, seed: FaultPlan.build(
            FaultSpec.make(
                "eviction-storm", rate=rate, start_hour=start, hours=length
            ),
            seed=seed,
        ),
        rate=st.floats(min_value=0.0, max_value=0.9),
        start=st.integers(min_value=0, max_value=24),
        length=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    ),
    st.builds(
        lambda bias, fraction, seed: FaultPlan.build(
            FaultSpec.make("forecast-bias", bias=bias),
            FaultSpec.make("forecast-dropout", fraction=fraction),
            seed=seed,
        ),
        bias=st.floats(min_value=-0.5, max_value=2.0),
        fraction=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31),
    ),
    st.builds(
        lambda fraction: FaultPlan.build(
            FaultSpec.make("trace-truncate", fraction=fraction)
        ),
        fraction=st.floats(min_value=0.05, max_value=1.0),
    ),
)


def small_workload(num_jobs: int, seed: int) -> WorkloadTrace:
    """A deterministic handful of jobs derived from ``seed``."""
    rng = np.random.default_rng(np.random.SeedSequence([seed]))
    jobs = [
        Job(
            job_id=index,
            arrival=int(rng.integers(0, hours(8))),
            length=int(rng.integers(10, hours(2))),
            cpus=int(rng.integers(1, 4)),
        )
        for index in range(num_jobs)
    ]
    return WorkloadTrace(jobs, name=f"prop-{seed}")


class TestCompletedRunInvariants:
    @given(
        hourly=ci_values,
        policy=st.sampled_from(POLICIES),
        num_jobs=st.integers(min_value=1, max_value=6),
        workload_seed=st.integers(min_value=0, max_value=1000),
        plan=survivable_plans,
    )
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_totals_finite_nonnegative_and_every_job_accounted(
        self, hourly, policy, num_jobs, workload_seed, plan
    ):
        workload = small_workload(num_jobs, workload_seed)
        carbon = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
        result = run_simulation(workload, carbon, policy, fault_plan=plan)
        totals = (
            result.total_carbon_g,
            result.total_energy_kwh,
            result.metered_cost,
        )
        assert all(np.isfinite(value) and value >= 0 for value in totals)
        # Completed jobs never exceed (and here always equal) submissions.
        assert len(result.records) == num_jobs
        for record in result.records:
            assert record.finish >= record.first_start >= record.arrival

    @given(
        policy=st.sampled_from(POLICIES),
        rate=st.floats(min_value=0.1, max_value=0.8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_identical_fault_plan_seeds_are_bit_identical(self, policy, rate, seed):
        workload = small_workload(4, 11)
        carbon = CarbonIntensityTrace(np.linspace(50.0, 400.0, 48))
        digests = [
            run_simulation(
                workload,
                carbon,
                f"spot-first:{policy}",
                eviction_model=None,
                fault_plan=FaultPlan.build(
                    FaultSpec.make("eviction-storm", rate=rate, hours=8), seed=seed
                ),
            ).digest()
            for _ in range(2)
        ]
        assert digests[0] == digests[1]


class TestPlanDigests:
    @given(
        seed_a=st.integers(min_value=0, max_value=2**31),
        seed_b=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_digest_depends_on_seed_and_params(self, seed_a, seed_b, rate):
        plan_a = FaultPlan.build(
            FaultSpec.make("eviction-storm", rate=rate), seed=seed_a
        )
        plan_b = plan_a.with_seed(seed_b)
        assert (plan_a.digest() == plan_b.digest()) == (seed_a == seed_b)
        assert plan_a.digest() == FaultPlan.build(
            FaultSpec.make("eviction-storm", rate=rate), seed=seed_a
        ).digest()

    @given(count=st.integers(min_value=1, max_value=9), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_parse_round_trip_preserves_digest(self, count, seed):
        text = f"trace-nan:count={count};forecast-bias:bias=0.25"
        assert (
            parse_fault_plan(text, seed=seed).digest()
            == parse_fault_plan(text, seed=seed).digest()
        )
