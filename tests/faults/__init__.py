"""Robustness layer tests: fault injection, chaos matrix, runner recovery."""
