"""Chaos matrix: every fault class against every timing-policy family.

The robustness contract under test: an injected fault ends in exactly
one of two outcomes -- the simulation **completes with finite numbers**
(survivable degradation) or it **raises a typed ReproError** (detected
rejection).  A silent wrong number (NaN/inf totals, missing jobs) is
never acceptable.

``$REPRO_CHAOS_SEED`` re-seeds the whole matrix, so CI can sweep seeds
without code changes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster.spot import HourlyHazard
from repro.errors import ReproError, SimulationError, TraceError
from repro.faults import (
    FaultPlan,
    FaultSpec,
    QueueCorruptionInjector,
    StormEvictionModel,
    parse_fault_plan,
)
from repro.simulator.simulation import run_simulation
from repro.simulator.validation import verify_result

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

POLICIES = ("nowait", "wait-awhile", "lowest-slot")

#: One representative plan per injectable fault class (process faults
#: are the runner's problem and live in test_runner_chaos.py).
FAULT_PLANS = {
    "eviction-storm": "eviction-storm:rate=0.6,start_hour=0,hours=12",
    "forecast-bias": "forecast-bias:bias=0.4",
    "forecast-dropout": "forecast-dropout:fraction=0.5",
    "trace-nan": "trace-nan:count=2",
    "trace-truncate": "trace-truncate:fraction=0.2",
    "queue-corruption-shuffle": "queue-corruption:minute=60,mode=shuffle",
    "queue-corruption-drop": "queue-corruption:minute=60,mode=drop,count=2",
}


class TestChaosMatrix:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
    def test_finite_completion_or_typed_error(
        self, fault, policy, tiny_workload, diurnal_carbon
    ):
        plan = parse_fault_plan(FAULT_PLANS[fault], seed=CHAOS_SEED)
        try:
            result = run_simulation(
                tiny_workload,
                diurnal_carbon,
                f"spot-first:{policy}",
                eviction_model=HourlyHazard(0.05),
                spot_seed=CHAOS_SEED,
                fault_plan=plan,
            )
        except ReproError:
            return  # typed rejection: an acceptable outcome by contract
        totals = (
            result.total_carbon_g,
            result.total_energy_kwh,
            result.metered_cost,
        )
        assert all(np.isfinite(value) and value >= 0 for value in totals)
        assert len(result.records) == len(tiny_workload.jobs)
        assert verify_result(result) == []


class TestTypedRejections:
    def test_nan_trace_raises_trace_error(self, tiny_workload, flat_carbon):
        with pytest.raises(TraceError):
            run_simulation(
                tiny_workload,
                flat_carbon,
                "nowait",
                fault_plan=parse_fault_plan("trace-nan:count=1", seed=CHAOS_SEED),
            )

    def test_truncated_trace_survives_by_retiling(self, tiny_workload, diurnal_carbon):
        result = run_simulation(
            tiny_workload,
            diurnal_carbon,
            "lowest-slot",
            fault_plan=parse_fault_plan("trace-truncate:fraction=0.1"),
        )
        assert np.isfinite(result.total_carbon_g)
        assert len(result.records) == len(tiny_workload.jobs)


class TestEvictionStorm:
    def test_storm_only_adds_evictions(self, tiny_workload, flat_carbon):
        """Under a storm, spot evictions are a superset in count."""
        kwargs = dict(
            eviction_model=HourlyHazard(0.02),
            spot_seed=CHAOS_SEED,
        )
        calm = run_simulation(
            tiny_workload, flat_carbon, "spot-first:nowait", **kwargs
        )
        stormy = run_simulation(
            tiny_workload,
            flat_carbon,
            "spot-first:nowait",
            fault_plan=FaultPlan.build(
                FaultSpec.make("eviction-storm", rate=0.95, start_hour=0, hours=48),
                seed=CHAOS_SEED,
            ),
            **kwargs,
        )
        calm_evictions = sum(record.evictions for record in calm.records)
        storm_evictions = sum(record.evictions for record in stormy.records)
        assert storm_evictions >= calm_evictions
        assert storm_evictions > 0  # rate 0.95 over 48 h must bite

    def test_outside_window_matches_base_model(self):
        base = HourlyHazard(0.1)
        storm = StormEvictionModel(
            base, storm_rate=0.9, start_minute=0, end_minute=60
        )
        rng_a = np.random.default_rng(np.random.SeedSequence([CHAOS_SEED]))
        rng_b = np.random.default_rng(np.random.SeedSequence([CHAOS_SEED]))
        base_offset = base.sample_eviction(10_000, rng_a)
        storm_offset = storm.sample_eviction(10_000, rng_b)
        assert storm_offset == base_offset


class TestForecastFaults:
    def test_bias_misleads_policy_but_not_accounting(
        self, tiny_workload, diurnal_carbon
    ):
        """Accounting always uses the true trace: a pure bias rescales
        what the policy sees, not what the books record."""
        clean = run_simulation(tiny_workload, diurnal_carbon, "nowait")
        biased = run_simulation(
            tiny_workload,
            diurnal_carbon,
            "nowait",
            fault_plan=parse_fault_plan("forecast-bias:bias=3.0"),
        )
        # NoWait ignores forecasts entirely, so the schedules -- and the
        # true-trace accounting -- must be identical.
        assert biased.digest() == clean.digest()

    def test_dropout_changes_forecast_sensitive_schedules(
        self, tiny_workload, diurnal_carbon
    ):
        clean = run_simulation(tiny_workload, diurnal_carbon, "lowest-slot")
        faulted = run_simulation(
            tiny_workload,
            diurnal_carbon,
            "lowest-slot",
            fault_plan=parse_fault_plan(
                "forecast-dropout:fraction=0.95", seed=CHAOS_SEED
            ),
        )
        assert np.isfinite(faulted.total_carbon_g)
        # With 95% of forecast hours answering the flat climatology mean,
        # the CI-chasing schedule almost surely moves; totals stay finite
        # either way, which is the contract (digest equality allowed).
        assert len(faulted.records) == len(clean.records)


class _StubJob:
    """Minimal stand-in for a pending _RunState (started flag only)."""

    def __init__(self):
        self.started = False


class _StubEngine:
    """Engine façade exposing only the ``_pending`` queue."""

    def __init__(self, count):
        self._pending = [_StubJob() for _ in range(count)]


class TestQueueCorruption:
    def test_shuffle_permutes_and_disarms(self):
        injector = QueueCorruptionInjector(
            fire_minute=30,
            mode="shuffle",
            count=0,
            rng=np.random.default_rng(np.random.SeedSequence([CHAOS_SEED, 1])),
        )
        engine = _StubEngine(6)
        before = list(engine._pending)
        assert injector.armed
        injector.fire(engine, 30)
        assert not injector.armed
        assert sorted(map(id, engine._pending)) == sorted(map(id, before))

    def test_drop_marks_victims_started_for_the_audit(self):
        injector = QueueCorruptionInjector(
            fire_minute=30,
            mode="drop",
            count=2,
            rng=np.random.default_rng(np.random.SeedSequence([CHAOS_SEED, 2])),
        )
        engine = _StubEngine(5)
        before = list(engine._pending)
        injector.fire(engine, 30)
        assert len(engine._pending) == 3
        dropped = [job for job in before if job not in engine._pending]
        assert all(job.started for job in dropped)

    def test_dropped_pending_jobs_raise_the_unfinished_audit(
        self, diurnal_carbon, tiny_workload
    ):
        """End to end: if the corruption actually removes queued jobs,
        the engine's 'jobs never finished' audit fires instead of a
        silently short result."""
        plan = parse_fault_plan(
            "queue-corruption:minute=0,mode=drop,count=5", seed=CHAOS_SEED
        )
        try:
            result = run_simulation(
                tiny_workload,
                diurnal_carbon,
                "res-first:carbon-time",
                reserved_cpus=1,
                fault_plan=plan,
            )
        except SimulationError as error:
            assert "never finished" in str(error)
        else:
            # The pending queue was empty at every firing opportunity --
            # then nothing may be missing from the books.
            assert len(result.records) == len(tiny_workload.jobs)
