"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.policies.base import SchedulingContext, validate_decision
from repro.policies.carbon_time import CarbonTime
from repro.policies.ecovisor import Ecovisor
from repro.policies.lowest_slot import LowestSlot
from repro.policies.lowest_window import LowestWindow
from repro.policies.suspend_resume import GaiaSuspendResume
from repro.policies.wait_awhile import WaitAwhile
from repro.units import hours
from repro.workload.job import Job, JobQueue, QueueSet

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

ci_values = st.lists(
    st.floats(min_value=1.0, max_value=2000.0, allow_nan=False, allow_infinity=False),
    min_size=30,
    max_size=120,
)

arrivals = st.integers(min_value=0, max_value=hours(10))
lengths = st.integers(min_value=1, max_value=hours(12))


def make_ctx(hourly, granularity=7):
    trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
    queues = QueueSet(
        (
            JobQueue(name="short", max_length=hours(2), max_wait=hours(6), avg_length=50.0),
            JobQueue(name="long", max_length=hours(12), max_wait=hours(8), avg_length=200.0),
        )
    )
    return SchedulingContext(
        forecaster=PerfectForecaster(trace), queues=queues, granularity=granularity
    )


# ---------------------------------------------------------------------------
# Trace integration properties
# ---------------------------------------------------------------------------


class TestTraceProperties:
    @given(hourly=ci_values, a=st.integers(0, 1500), b=st.integers(0, 1500))
    @settings(max_examples=60, deadline=None)
    def test_integral_additive(self, hourly, a, b):
        trace = CarbonIntensityTrace(hourly)
        lo, hi = sorted((a % trace.horizon_minutes, b % trace.horizon_minutes))
        mid = (lo + hi) // 2
        whole = trace.interval_carbon(lo, hi)
        split = trace.interval_carbon(lo, mid) + trace.interval_carbon(mid, hi)
        assert abs(whole - split) < 1e-6

    @given(hourly=ci_values, a=st.integers(0, 1500), b=st.integers(0, 1500))
    @settings(max_examples=60, deadline=None)
    def test_integral_bounded_by_extremes(self, hourly, a, b):
        trace = CarbonIntensityTrace(hourly)
        lo, hi = sorted((a % trace.horizon_minutes, b % trace.horizon_minutes))
        if lo == hi:
            return
        duration_hours = (hi - lo) / 60.0
        integral = trace.interval_carbon(lo, hi)
        assert integral <= max(hourly) * duration_hours + 1e-6
        assert integral >= min(hourly) * duration_hours - 1e-6

    @given(hourly=ci_values)
    @settings(max_examples=30, deadline=None)
    def test_tile_preserves_values(self, hourly):
        trace = CarbonIntensityTrace(hourly)
        tiled = trace.tile_to(trace.num_hours * 2 + 5)
        for hour in range(trace.num_hours):
            assert tiled.hourly[hour] == trace.hourly[hour]
            assert tiled.hourly[hour + trace.num_hours] == trace.hourly[hour]


# ---------------------------------------------------------------------------
# Policy decision properties
# ---------------------------------------------------------------------------


class TestPolicyProperties:
    @given(hourly=ci_values, arrival=arrivals, length=lengths)
    @settings(max_examples=60, deadline=None)
    def test_all_policies_produce_valid_decisions(self, hourly, arrival, length):
        ctx = make_ctx(hourly)
        job = Job(job_id=0, arrival=arrival, length=length, cpus=1)
        job = job.with_queue(ctx.queues.queue_for_length(length).name)
        for policy in (LowestSlot(), LowestWindow(), CarbonTime(), WaitAwhile(),
                       Ecovisor(), GaiaSuspendResume()):
            decision = policy.decide(job, ctx)
            validate_decision(job, decision, ctx)

    @given(hourly=ci_values, arrival=arrivals, length=lengths)
    @settings(max_examples=60, deadline=None)
    def test_wait_awhile_not_worse_than_now(self, hourly, arrival, length):
        """Planned carbon never exceeds the run-immediately footprint."""
        ctx = make_ctx(hourly)
        trace = ctx.forecaster.trace
        job = Job(job_id=0, arrival=arrival, length=length, cpus=1)
        job = job.with_queue(ctx.queues.queue_for_length(length).name)
        decision = WaitAwhile().decide(job, ctx)
        planned = sum(trace.interval_carbon(s, e) for s, e in decision.segments)
        immediate = trace.interval_carbon(arrival, arrival + length)
        assert planned <= immediate + 1e-6

    @given(hourly=ci_values, arrival=arrivals)
    @settings(max_examples=60, deadline=None)
    def test_carbon_time_never_hurts(self, hourly, arrival):
        """Carbon-Time's chosen window (at the estimate length) is never
        dirtier than starting immediately."""
        ctx = make_ctx(hourly)
        trace = ctx.forecaster.trace
        job = Job(job_id=0, arrival=arrival, length=30, cpus=1, queue="short")
        estimate = 50
        decision = CarbonTime().decide(job, ctx)
        chosen = trace.interval_carbon(decision.start_time, decision.start_time + estimate)
        immediate = trace.interval_carbon(arrival, arrival + estimate)
        assert chosen <= immediate + 1e-6

    @given(hourly=ci_values, arrival=arrivals, length=lengths)
    @settings(max_examples=60, deadline=None)
    def test_ecovisor_waiting_budget(self, hourly, arrival, length):
        ctx = make_ctx(hourly)
        job = Job(job_id=0, arrival=arrival, length=length, cpus=1)
        job = job.with_queue(ctx.queues.queue_for_length(length).name)
        decision = Ecovisor().decide(job, ctx)
        total = sum(e - s for s, e in decision.segments)
        assert total == length
        waiting = decision.segments[-1][1] - arrival - length
        assert 0 <= waiting <= ctx.queue_of(job).max_wait


class TestForecasterProperties:
    @given(hourly=ci_values, now=st.integers(0, hours(20)))
    @settings(max_examples=40, deadline=None)
    def test_historical_never_exceeds_bounds(self, hourly, now):
        """Historical forecasts stay within the observed value range."""
        from repro.carbon.historical import HistoricalForecaster

        trace = CarbonIntensityTrace(hourly)
        now = min(now, trace.horizon_minutes - hours(2))
        forecaster = HistoricalForecaster(trace)
        horizon_hours = min(24, trace.num_hours - now // 60)
        values = forecaster.slot_values(now, now, horizon_hours)
        assert np.all(values >= min(hourly) - 1e-9)
        assert np.all(values <= max(hourly) + 1e-9)

    @given(hourly=ci_values, sigma=st.floats(0.0, 0.8))
    @settings(max_examples=40, deadline=None)
    def test_noisy_integral_consistency(self, hourly, sigma):
        """Window integrals equal sums of sub-interval integrals."""
        from repro.carbon.forecast import NoisyForecaster

        trace = CarbonIntensityTrace(hourly)
        forecaster = NoisyForecaster(trace, sigma=sigma, seed=1)
        end = min(trace.horizon_minutes, 600)
        whole = forecaster.interval_carbon(0, 0, end)
        split = forecaster.interval_carbon(0, 0, end // 2) + (
            forecaster.interval_carbon(0, end // 2, end)
        )
        assert abs(whole - split) < 1e-6


class TestEstimatorProperties:
    @given(
        lengths=st.lists(st.floats(1.0, 10_000.0), min_size=1, max_size=200),
        alpha=st.floats(0.01, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_estimate_within_observed_range(self, lengths, alpha):
        from repro.workload.estimation import OnlineLengthEstimator
        from repro.workload.job import default_queue_set

        estimator = OnlineLengthEstimator(default_queue_set(), alpha=alpha, warmup=5)
        for length in lengths:
            estimator.observe("short", length)
        estimate = estimator.estimate("short")
        assert min(lengths) - 1e-6 <= estimate <= max(lengths) + 1e-6


# ---------------------------------------------------------------------------
# End-to-end engine properties
# ---------------------------------------------------------------------------

job_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=hours(48)),   # arrival
        st.integers(min_value=1, max_value=hours(10)),   # length
        st.integers(min_value=1, max_value=4),           # cpus
    ),
    min_size=1,
    max_size=25,
)


class TestEngineProperties:
    @given(jobs=job_lists, reserved=st.integers(0, 6),
           spec=st.sampled_from(["nowait", "allwait-threshold", "carbon-time",
                                 "res-first:carbon-time", "wait-awhile",
                                 "spot-res:carbon-time"]))
    @settings(max_examples=40, deadline=None)
    def test_accounting_conserved(self, jobs, reserved, spec):
        from repro.simulator.simulation import run_simulation
        from repro.workload.trace import WorkloadTrace

        rng = np.random.default_rng(0)
        trace = WorkloadTrace(
            [Job(job_id=i, arrival=a, length=l, cpus=c)
             for i, (a, l, c) in enumerate(jobs)]
        )
        carbon = CarbonIntensityTrace(rng.uniform(20, 900, size=24 * 3), name="t")
        result = run_simulation(trace, carbon, spec, reserved_cpus=reserved)
        assert len(result.records) == len(jobs)
        for record in result.records:
            executed = sum(i.end - i.start for i in record.usage)
            assert executed == record.length + record.lost_cpu_minutes / record.cpus
            assert record.waiting_time >= 0
            assert record.carbon_g >= 0
        assert result.total_cost >= result.reserved_upfront_cost
