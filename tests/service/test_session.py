"""EngineSession surface: watermark discipline, stepping, drain semantics.

Digest parity between sessions and batch runs lives in
``tests/service/test_parity.py``; this module covers the session API's
contracts in isolation.
"""

import pytest

from repro.errors import SimulationError
from repro.simulator import build_engine
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace


class TestSessionApi:
    def _engine(self, flat_carbon, jobs=(), horizon=None):
        workload = WorkloadTrace(jobs, name="session", horizon=horizon)
        return build_engine(workload, flat_carbon, "nowait")

    def test_open_twice_raises(self, flat_carbon):
        engine = self._engine(flat_carbon)
        engine.open()
        with pytest.raises(SimulationError, match="already opened"):
            engine.open()

    def test_run_after_open_raises(self, flat_carbon):
        engine = self._engine(flat_carbon)
        engine.open()
        with pytest.raises(SimulationError, match="already opened"):
            engine.run()

    def test_submissions_must_be_time_ordered(self, flat_carbon):
        engine = self._engine(flat_carbon, horizon=1000)
        session = engine.open()
        session.submit(Job(job_id=0, arrival=100, length=30, queue="short"))
        with pytest.raises(SimulationError, match="time-ordered"):
            session.submit(Job(job_id=1, arrival=99, length=30, queue="short"))

    def test_advance_backwards_raises(self, flat_carbon):
        session = self._engine(flat_carbon, horizon=1000).open()
        session.advance_to(500)
        assert session.now == 500
        with pytest.raises(SimulationError, match="cannot advance"):
            session.advance_to(499)

    def test_advance_fires_due_events(self, flat_carbon):
        engine = self._engine(flat_carbon, horizon=1000)
        session = engine.open()
        run = session.submit(Job(job_id=0, arrival=0, length=60, queue="short"))
        assert not run.finished
        session.advance_to(60)  # start fired; finish at 60 not yet due
        session.advance_to(61)
        assert run.finished and run.finish == 60

    def test_drain_is_idempotent_and_closes_the_session(self, flat_carbon):
        engine = self._engine(flat_carbon, horizon=1000)
        session = engine.open()
        session.submit(Job(job_id=0, arrival=0, length=30, queue="short"))
        result = session.drain()
        assert session.drain() is result
        assert session.drained
        with pytest.raises(SimulationError, match="drained"):
            session.submit(Job(job_id=1, arrival=40, length=30, queue="short"))

    def test_result_property_requires_drain(self, flat_carbon):
        session = self._engine(flat_carbon).open()
        with pytest.raises(SimulationError, match="not drained"):
            _ = session.result
        session.drain()
        assert list(session.result.records) == []

    def test_interleaved_advance_preserves_the_digest(self, flat_carbon):
        """Letting time pass between submissions cannot move the digest."""
        jobs = [
            Job(job_id=i, arrival=40 * i, length=90, queue="short")
            for i in range(8)
        ]
        workload = WorkloadTrace(jobs, name="interleave", horizon=2000)
        batch = build_engine(workload, flat_carbon, "carbon-time").run()

        engine = build_engine(workload, flat_carbon, "carbon-time")
        session = engine.open()
        for job in engine.workload.jobs:
            session.advance_to(job.arrival)  # watermark moves first
            session.submit(job)
        assert session.drain().digest() == batch.digest()
