"""SchedulerService behaviour: admission, backpressure, cancel, shutdown.

All coroutines are driven with ``asyncio.run`` inside sync test
functions -- the suite has no async test plugin, deliberately (the
service itself needs nothing beyond stdlib asyncio either).
"""

import asyncio

import pytest

from repro.service import AdmissionError, SchedulerService, ServiceConfig


def _config(**overrides) -> ServiceConfig:
    defaults = dict(
        policy="carbon-time",
        region="SA-AU",
        horizon_days=2.0,
        workload_name="svc-test",
        max_pending=4,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def run(coroutine):
    return asyncio.run(coroutine)


async def _started(config: ServiceConfig) -> SchedulerService:
    service = SchedulerService(config)
    await service.start()
    return service


def _reason(excinfo) -> tuple[str, int]:
    return excinfo.value.reason, excinfo.value.status


class TestAdmissionControl:
    def _rejection(self, config: ServiceConfig, **submission) -> tuple[str, int]:
        async def scenario():
            service = await _started(config)
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    await service.submit(**submission)
                return _reason(excinfo)
            finally:
                await service.stop()

        return run(scenario())

    def test_bad_length(self):
        assert self._rejection(_config(), length=0) == ("bad_length", 422)

    def test_bad_cpus(self):
        assert self._rejection(_config(), length=60, cpus=0) == ("bad_cpus", 422)

    def test_too_wide(self):
        config = _config(max_cpus=8)
        assert self._rejection(config, length=60, cpus=9) == ("too_wide", 422)

    def test_too_long_for_named_queue(self):
        reason = self._rejection(_config(), length=10_000, queue="short")
        assert reason == ("too_long", 422)

    def test_too_long_for_any_queue(self):
        reason = self._rejection(_config(), length=10_000_000)
        assert reason == ("too_long", 422)

    def test_unknown_queue(self):
        reason = self._rejection(_config(), length=60, queue="imaginary")
        assert reason == ("unknown_queue", 422)

    def test_beyond_horizon(self):
        config = _config(horizon_days=1.0)
        reason = self._rejection(config, length=60, arrival=100_000)
        assert reason == ("beyond_horizon", 422)

    def test_capacity_cap(self):
        async def scenario():
            service = await _started(_config(max_jobs=1))
            try:
                await service.submit(length=60)
                with pytest.raises(AdmissionError) as excinfo:
                    await service.submit(length=60)
                return _reason(excinfo)
            finally:
                await service.stop()

        assert run(scenario()) == ("capacity", 429)

    def test_arrival_past_and_duplicate_id(self):
        async def scenario():
            service = await _started(_config())
            try:
                await service.submit(length=60, arrival=500, job_id=7)
                with pytest.raises(AdmissionError) as past:
                    await service.submit(length=60, arrival=499)
                with pytest.raises(AdmissionError) as duplicate:
                    await service.submit(length=60, arrival=500, job_id=7)
                return _reason(past), _reason(duplicate)
            finally:
                await service.stop()

        past, duplicate = run(scenario())
        assert past == ("arrival_past", 409)
        assert duplicate == ("duplicate_id", 409)

    def test_rejected_after_drain(self):
        async def scenario():
            service = await _started(_config())
            try:
                await service.submit(length=60)
                await service.drain()
                with pytest.raises(AdmissionError) as submit_refused:
                    await service.submit(length=60)
                with pytest.raises(AdmissionError) as advance_refused:
                    await service.advance_to(10_000)
                return _reason(submit_refused), _reason(advance_refused)
            finally:
                await service.stop()

        submit_refused, advance_refused = run(scenario())
        assert submit_refused == ("not_running", 409)
        assert advance_refused == ("not_running", 409)

    def test_rejections_count_in_health(self):
        async def scenario():
            service = await _started(_config())
            try:
                with pytest.raises(AdmissionError):
                    await service.submit(length=0)
                return service.health()
            finally:
                await service.stop()

        health = run(scenario())
        assert health["jobs_rejected"] == 1
        assert health["jobs_admitted"] == 0


class TestBackpressure:
    def test_nowait_submit_rejects_when_full(self):
        async def scenario():
            service = await _started(_config(max_pending=2))
            service.pause()  # the worker stops draining the queue
            inflight = [
                asyncio.create_task(service.submit(length=60)) for _ in range(2)
            ]
            await asyncio.sleep(0)  # let both acquire their slots
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    await service.submit(length=60, wait=False)
                return _reason(excinfo)
            finally:
                service.resume()
                await asyncio.gather(*inflight)
                await service.stop()

        assert run(scenario()) == ("queue_full", 503)

    def test_waiting_submit_times_out_when_full(self):
        async def scenario():
            service = await _started(_config(max_pending=1))
            service.pause()
            inflight = asyncio.create_task(service.submit(length=60))
            await asyncio.sleep(0)
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    await service.submit(length=60, wait=True, timeout=0.01)
                return _reason(excinfo)
            finally:
                service.resume()
                await inflight
                await service.stop()

        assert run(scenario()) == ("queue_full", 503)

    def test_waiting_submit_proceeds_once_a_slot_frees(self):
        async def scenario():
            service = await _started(_config(max_pending=1))
            service.pause()
            first = asyncio.create_task(service.submit(length=60))
            await asyncio.sleep(0)
            second = asyncio.create_task(service.submit(length=60))
            await asyncio.sleep(0)
            assert not second.done()  # parked on backpressure, not rejected
            service.resume()
            payloads = await asyncio.gather(first, second)
            await service.stop()
            return payloads

        payloads = run(scenario())
        assert [payload["state"] for payload in payloads] == ["waiting", "waiting"]
        assert {payload["job_id"] for payload in payloads} == {0, 1}


class TestCancel:
    def test_cancel_while_queued_never_reaches_the_engine(self):
        async def scenario():
            service = await _started(_config())
            service.pause()
            inflight = asyncio.create_task(service.submit(length=60, job_id=3))
            await asyncio.sleep(0)
            cancelled = service.cancel(3)
            again = service.cancel(3)  # idempotent
            service.resume()
            payload = await inflight
            drained = await service.drain()
            await service.stop()
            return cancelled, again, payload, drained

        cancelled, again, payload, drained = run(scenario())
        assert cancelled["state"] == "cancelled"
        assert again["state"] == "cancelled"
        assert payload["state"] == "cancelled"
        assert "planned_start" not in payload  # the engine never saw it
        assert drained["jobs"] == 0

    def test_cancel_after_scheduling_conflicts(self):
        async def scenario():
            service = await _started(_config())
            try:
                await service.submit(length=60, job_id=5)
                with pytest.raises(AdmissionError) as excinfo:
                    service.cancel(5)
                return _reason(excinfo)
            finally:
                await service.stop()

        assert run(scenario()) == ("already_scheduled", 409)

    def test_cancel_unknown_job(self):
        async def scenario():
            service = await _started(_config())
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    service.cancel(99)
                return _reason(excinfo)
            finally:
                await service.stop()

        assert run(scenario()) == ("unknown_job", 404)


class TestLiveReads:
    def test_live_accounting_matches_the_drained_records(self):
        async def scenario():
            service = await _started(_config())
            try:
                for job_id, arrival in enumerate((0, 30, 60)):
                    await service.submit(length=120, arrival=arrival, job_id=job_id)
                await service.advance_to(service.config.horizon_minutes)
                live = service.accounting(detail=True)
                drained = await service.drain()
                final = service.accounting(detail=True)
                return live, drained, final
            finally:
                await service.stop()

        live, drained, final = run(scenario())
        assert live["drained"] is False and final["drained"] is True
        assert live["total_rows"] == final["total_rows"] == drained["jobs"] == 3
        live_rows = {row["job_id"]: row for row in live["jobs"]}
        for row in final["jobs"]:
            for column in ("finish", "carbon_g", "energy_kwh", "cost_usd"):
                assert live_rows[row["job_id"]][column] == pytest.approx(row[column])

    def test_metrics_track_states_and_totals(self):
        async def scenario():
            service = await _started(_config())
            try:
                await service.submit(length=60, job_id=0)
                with pytest.raises(AdmissionError):
                    await service.submit(length=0)
                before = service.metrics()
                await service.drain()
                after = service.metrics()
                return before, after
            finally:
                await service.stop()

        before, after = run(scenario())
        assert before["counters"]["service.jobs_admitted"] == 1.0
        assert before["counters"]["service.jobs_rejected"] == 1.0
        assert before["gauges"]["service.jobs_waiting"] == 1.0
        assert after["gauges"]["service.jobs_finished"] == 1.0
        assert after["gauges"]["service.pending_events"] == 0.0
        assert after["gauges"]["service.carbon_g"] > 0.0

    def test_jobs_listing_filters_by_state(self):
        async def scenario():
            service = await _started(_config())
            try:
                await service.submit(length=60, job_id=0)
                await service.submit(length=60, job_id=1)
                return service.jobs(), service.jobs(state="finished")
            finally:
                await service.stop()

        everything, finished = run(scenario())
        assert everything["total"] == 2
        assert finished["total"] == 0


class TestLifecycle:
    def test_stop_leaves_no_running_tasks(self):
        async def scenario():
            service = await _started(_config())
            await service.submit(length=60)
            await service.drain()
            await service.stop()
            current = asyncio.current_task()
            return [task for task in asyncio.all_tasks() if task is not current]

        assert run(scenario()) == []

    def test_stop_is_idempotent_and_double_start_rejected(self):
        async def scenario():
            service = await _started(_config())
            with pytest.raises(AdmissionError) as excinfo:
                await service.start()
            await service.stop()
            await service.stop()
            return _reason(excinfo), service.state

        reason, state = run(scenario())
        assert reason == ("bad_state", 409)
        assert state == "stopped"

    def test_drain_is_idempotent(self):
        async def scenario():
            service = await _started(_config())
            try:
                await service.submit(length=60)
                first = await service.drain()
                second = await service.drain()
                return first, second
            finally:
                await service.stop()

        first, second = run(scenario())
        assert first == second
