"""Batch/online equivalence, bit for bit.

The central guarantee of the service work (docs/service.md): feeding a
trace's jobs one at a time -- through the engine session directly, or
over the full HTTP stack -- produces a ``SimulationResult.digest()``
bit-identical to a batch ``Engine.run`` over the same trace with the
same configuration. Regression-tested here across difftest scenario
seeds (the same frozen scenario distribution the differential oracle
runs) and end to end over the service's JSON/HTTP API.
"""

import asyncio

import pytest

from repro.difftest.scenarios import scenario_spec
from repro.service import SchedulerService, ServiceClient, ServiceConfig, ServiceServer
from repro.simulator import build_engine
from repro.workload.synthetic import poisson_exponential
from repro.workload.trace import WorkloadTrace


def _session_digest(kwargs) -> str:
    """Open + submit-per-job + drain over the prepared workload."""
    engine = build_engine(**kwargs)
    session = engine.open()
    for job in engine.workload.jobs:
        session.submit(job)
    return session.drain().digest()


class TestDifftestScenarioParity:
    """Session replay == batch run across the difftest scenario space."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("index", [0, 1])
    def test_submit_per_job_matches_batch_digest(self, seed, index):
        spec = scenario_spec(seed, index)
        batch = build_engine(**spec.to_kwargs()).run()
        assert _session_digest(spec.to_kwargs()) == batch.digest()

    def test_replay_matches_submit_per_job(self):
        spec = scenario_spec(0, 2)
        engine = build_engine(**spec.to_kwargs())
        session = engine.open()
        session.replay(engine.workload.jobs)
        assert session.drain().digest() == _session_digest(spec.to_kwargs())


def _parity_config(policy: str, seed: int) -> ServiceConfig:
    return ServiceConfig(
        policy=policy,
        region="SA-AU",
        horizon_days=2.0,
        workload_name=f"parity-{policy}-{seed}",
        max_pending=8,
    )


def _parity_trace(config: ServiceConfig, seed: int) -> WorkloadTrace:
    # The batch-side obligation from docs/service.md: the reference
    # trace must carry the config's workload name and horizon, because
    # both are part of the digest's identifying configuration.
    trace = poisson_exponential(
        horizon=config.horizon_minutes, seed=seed, mean_interarrival=40
    )
    return WorkloadTrace(
        list(trace.jobs), name=config.workload_name, horizon=config.horizon_minutes
    )


async def _serve_and_drain(config: ServiceConfig, trace: WorkloadTrace) -> dict:
    """Stream the trace over HTTP, drain, shut down; return the drain payload."""
    service = SchedulerService(config)
    await service.start()
    server = ServiceServer(service, port=0)
    host, port = await server.start()
    client = ServiceClient(host, port)
    try:
        for job in trace.jobs:
            scheduled = await client.submit(
                length=job.length, cpus=job.cpus, arrival=job.arrival, job_id=job.job_id
            )
            assert scheduled["job_id"] == job.job_id
        return await client.drain()
    finally:
        await client.shutdown()
        await server.serve_until_shutdown()


class TestHttpEndToEndParity:
    @pytest.mark.parametrize(
        ("policy", "seed"),
        [("carbon-time", 1), ("carbon-time", 2), ("nowait", 3), ("lowest-window", 4)],
    )
    def test_streamed_submissions_match_batch_digest(self, policy, seed):
        config = _parity_config(policy, seed)
        trace = _parity_trace(config, seed)
        batch = config.engine(trace).run()
        drained = asyncio.run(_serve_and_drain(config, trace))
        assert drained["jobs"] == len(trace.jobs)
        assert drained["digest"] == batch.digest()

    def test_accounting_after_drain_carries_the_batch_digest(self):
        config = _parity_config("carbon-time", 5)
        trace = _parity_trace(config, 5)
        batch = config.engine(trace).run()

        async def scenario():
            service = SchedulerService(config)
            await service.start()
            try:
                for job in trace.jobs:
                    await service.submit(
                        length=job.length,
                        cpus=job.cpus,
                        arrival=job.arrival,
                        job_id=job.job_id,
                    )
                await service.drain()
                return service.accounting(limit=10_000, detail=True)
            finally:
                await service.stop()

        accounting = asyncio.run(scenario())
        assert accounting["drained"] is True
        assert accounting["digest"] == batch.digest()
        by_id = {record.job_id: record for record in batch.records}
        assert len(accounting["jobs"]) == len(by_id)
        for row in accounting["jobs"]:
            record = by_id[row["job_id"]]
            assert row["finish"] == record.finish
            assert row["carbon_g"] == pytest.approx(record.carbon_g)
            assert row["cost_usd"] == pytest.approx(record.usage_cost)
