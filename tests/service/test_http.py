"""The JSON/HTTP surface: routing, error mapping, end-to-end endpoints.

Drives a real ``ServiceServer`` on an ephemeral port through the async
client -- the same path ``examples/service_demo.py`` and the CI
service-smoke job exercise.
"""

import asyncio
import json

import pytest

from repro.service import (
    ROUTES,
    SchedulerService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceServer,
)
from repro.service.http import Route, _match


def _config(**overrides) -> ServiceConfig:
    defaults = dict(
        policy="carbon-time",
        region="SA-AU",
        horizon_days=2.0,
        workload_name="http-test",
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _serve(config: ServiceConfig):
    service = SchedulerService(config)
    await service.start()
    server = ServiceServer(service, port=0)
    host, port = await server.start()
    return service, server, ServiceClient(host, port)


class TestRouting:
    def test_pattern_matching(self):
        param = Route("GET", "/jobs/{job_id}", "handle_status", "")
        plain = Route("GET", "/jobs", "handle_jobs", "")
        assert _match(param, "/jobs/7") == {"job_id": "7"}
        assert _match(param, "/jobs") is None
        assert _match(plain, "/jobs") == {}
        assert _match(plain, "/jobs/7") is None

    def test_routes_are_unique(self):
        seen = {(route.method, route.pattern) for route in ROUTES}
        assert len(seen) == len(ROUTES)


class TestEndpoints:
    def test_full_session_over_http(self):
        async def scenario():
            service, server, client = await _serve(_config())
            try:
                health = await client.health()
                submitted = await client.submit(length=120, cpus=2, arrival=30)
                status = await client.status(submitted["job_id"])
                listing = await client.jobs()
                advanced = await client.advance_to(1000)
                accounting = await client.accounting(detail=True)
                metrics = await client.metrics()
                drained = await client.drain()
                return (health, submitted, status, listing, advanced,
                        accounting, metrics, drained)
            finally:
                await client.shutdown()
                await server.serve_until_shutdown()

        (health, submitted, status, listing, advanced,
         accounting, metrics, drained) = asyncio.run(scenario())
        assert health["state"] == "running"
        assert submitted["queue"] == "short" and submitted["arrival"] == 30
        assert status["job_id"] == submitted["job_id"]
        assert listing["total"] == 1
        assert advanced["now"] == 1000 and advanced["from"] == 30
        assert accounting["totals"]["jobs"] == 1.0
        assert metrics["gauges"]["service.jobs_finished"] == 1.0
        assert drained["jobs"] == 1 and len(drained["digest"]) == 64

    def test_error_mapping_and_reason_codes(self):
        async def scenario():
            service, server, client = await _serve(_config(max_cpus=4))
            outcomes = {}
            try:
                for name, call in {
                    "too_wide": client.submit(length=60, cpus=5),
                    "unknown_job": client.status(99),
                    "cancel_unknown": client.cancel(42),
                }.items():
                    with pytest.raises(ServiceError) as excinfo:
                        await call
                    outcomes[name] = (excinfo.value.status, excinfo.value.reason)
                return outcomes
            finally:
                await client.shutdown()
                await server.serve_until_shutdown()

        outcomes = asyncio.run(scenario())
        assert outcomes["too_wide"] == (422, "too_wide")
        assert outcomes["unknown_job"] == (404, "unknown_job")
        assert outcomes["cancel_unknown"] == (404, "unknown_job")

    def test_unknown_route_and_wrong_method(self):
        async def scenario():
            service, server, client = await _serve(_config())
            try:
                with pytest.raises(ServiceError) as missing:
                    await client._request("GET", "/nope")
                with pytest.raises(ServiceError) as method:
                    await client._request("DELETE", "/healthz")
                return missing.value.status, method.value.status
            finally:
                await client.shutdown()
                await server.serve_until_shutdown()

        missing_status, method_status = asyncio.run(scenario())
        assert missing_status == 404
        assert method_status == 405

    def test_malformed_json_body_is_a_client_error(self):
        async def scenario():
            service, server, client = await _serve(_config())
            try:
                reader, writer = await asyncio.open_connection(
                    client.host, client.port
                )
                body = b"{not json"
                writer.write(
                    b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                return raw
            finally:
                await client.shutdown()
                await server.serve_until_shutdown()

        raw = asyncio.run(scenario())
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b"400" in head.split(b"\r\n", 1)[0]
        assert "error" in json.loads(payload)

    def test_shutdown_leaves_no_running_tasks(self):
        async def scenario():
            service, server, client = await _serve(_config())
            await client.submit(length=60)
            reply = await client.shutdown()
            await server.serve_until_shutdown()
            current = asyncio.current_task()
            leaked = [task for task in asyncio.all_tasks() if task is not current]
            return reply, service.state, leaked

        reply, state, leaked = asyncio.run(scenario())
        assert reply == {"state": "stopping"}
        assert state == "stopped"
        assert leaked == []
