"""Cross-cutting coverage: doctests, __main__, misc metric units."""

import doctest
import subprocess
import sys

import numpy as np
import pytest

import repro.units


class TestDoctests:
    def test_units_doctests(self):
        results = doctest.testmod(repro.units)
        assert results.failed == 0
        assert results.attempted > 0


class TestMainModule:
    def test_python_dash_m_repro(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--workload", "poisson",
             "--horizon-days", "2", "--policy", "nowait"],
            capture_output=True, text=True, timeout=180,
        )
        assert completed.returncode == 0
        assert "NoWait" in completed.stdout


class TestEnergyCostUnits:
    def test_hand_computed(self):
        """1 CPU for 60 min at 100 $/MWh and 10 W: 0.01 kWh -> $0.001."""
        from repro.analysis.metrics import energy_cost_usd
        from repro.carbon.price import ElectricityPriceTrace
        from repro.cluster.pricing import DEFAULT_PRICING, PurchaseOption
        from repro.simulator.results import (
            JobRecord,
            SimulationResult,
            UsageInterval,
        )

        record = JobRecord(
            job_id=0, queue="q", arrival=0, length=60, cpus=1,
            first_start=0, finish=60, carbon_g=1.0, energy_kwh=0.01,
            usage_cost=0.0, baseline_carbon_g=1.0,
            usage=(UsageInterval(0, 60, 1, PurchaseOption.ON_DEMAND),),
        )
        result = SimulationResult(
            policy_name="p", workload_name="w", region="r", reserved_cpus=0,
            horizon=1440, pricing=DEFAULT_PRICING, records=(record,),
        )
        price = ElectricityPriceTrace([100.0] * 24)
        assert energy_cost_usd(result, price) == pytest.approx(0.001)

    def test_rejects_bad_power(self):
        from repro.analysis.metrics import energy_cost_usd
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            energy_cost_usd(None, None, kw_per_cpu=0)


class TestCliWorkloadBranches:
    def test_long_horizon_uses_year_pipeline(self, capsys):
        from repro.cli import main

        code = main([
            "--workload", "alibaba", "--jobs", "150", "--horizon-days", "10",
            "--policy", "nowait",
        ])
        assert code == 0

    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__
