"""Spot eviction models."""

import math

import numpy as np
import pytest

from repro.cluster.spot import DiurnalHazard, HourlyHazard, NoEvictions
from repro.errors import ConfigError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestNoEvictions:
    def test_never_evicts(self, rng):
        model = NoEvictions()
        assert math.isinf(model.sample_eviction(0, rng))


class TestHourlyHazard:
    def test_zero_rate_never_evicts(self, rng):
        assert math.isinf(HourlyHazard(0.0).sample_eviction(0, rng))

    def test_mean_matches_rate(self, rng):
        model = HourlyHazard(0.10)
        samples = [model.sample_eviction(0, rng) for _ in range(20_000)]
        # exponential with per-hour hazard -ln(0.9): mean = 60/lambda
        expected_mean = 60.0 / -math.log(0.9)
        assert np.mean(samples) == pytest.approx(expected_mean, rel=0.05)

    def test_survival_probability(self):
        model = HourlyHazard(0.10)
        assert model.survival_probability(60) == pytest.approx(0.9)
        assert model.survival_probability(120) == pytest.approx(0.81)

    def test_survival_empirical(self, rng):
        model = HourlyHazard(0.15)
        survived = sum(model.sample_eviction(0, rng) > 60 for _ in range(20_000))
        assert survived / 20_000 == pytest.approx(0.85, abs=0.01)

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            HourlyHazard(1.0)
        with pytest.raises(ConfigError):
            HourlyHazard(-0.1)

    def test_rejects_negative_minutes(self):
        with pytest.raises(ConfigError):
            HourlyHazard(0.1).survival_probability(-1)

    def test_rng_for_job_deterministic(self):
        model = HourlyHazard(0.1)
        a = model.sample_eviction(0, model.rng_for_job(1, 42))
        b = model.sample_eviction(0, model.rng_for_job(1, 42))
        assert a == b

    def test_rng_differs_per_job(self):
        model = HourlyHazard(0.1)
        a = model.sample_eviction(0, model.rng_for_job(1, 1))
        b = model.sample_eviction(0, model.rng_for_job(1, 2))
        assert a != b


class TestDiurnalHazard:
    def test_zero_base_never_evicts(self, rng):
        assert math.isinf(DiurnalHazard(0.0).sample_eviction(0, rng))

    def test_mean_rate_close_to_base(self, rng):
        model = DiurnalHazard(0.10, amplitude=0.5)
        samples = [model.sample_eviction(0, rng) for _ in range(10_000)]
        flat = HourlyHazard(0.10)
        expected_mean = 60.0 / -math.log(0.9)
        # Diurnal modulation averages out near the flat-mean eviction time.
        assert np.mean(samples) == pytest.approx(expected_mean, rel=0.25)
        assert flat.survival_probability(60) == pytest.approx(0.9)

    def test_peak_hour_has_more_evictions(self, rng):
        model = DiurnalHazard(0.10, amplitude=1.0, peak_hour=14.0)
        # Jobs started at the peak should be evicted sooner on average than
        # jobs started at the trough.
        peak_start = 14 * 60
        trough_start = 2 * 60
        peak = np.mean([
            min(model.sample_eviction(peak_start, rng), 180.0) for _ in range(4000)
        ])
        trough = np.mean([
            min(model.sample_eviction(trough_start, rng), 180.0) for _ in range(4000)
        ])
        assert peak < trough

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            DiurnalHazard(1.0)
        with pytest.raises(ConfigError):
            DiurnalHazard(0.1, amplitude=2.0)
