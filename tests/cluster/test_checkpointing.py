"""Checkpointed spot executions (the paper's deferred trade-off)."""

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.pricing import PurchaseOption
from repro.cluster.spot import CheckpointConfig, HourlyHazard
from repro.errors import ConfigError, SimulationError
from repro.simulator.simulation import run_simulation
from repro.units import days, hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace


def flat():
    return CarbonIntensityTrace(np.full(24 * 30, 100.0), name="flat")


def spot_queue():
    return QueueSet((JobQueue(name="q", max_length=hours(6), max_wait=0),))


class TestCheckpointConfig:
    def test_wall_time_no_trailing_checkpoint(self):
        config = CheckpointConfig(interval=30, overhead=5)
        assert config.wall_time(30) == 30   # one stretch, done
        assert config.wall_time(31) == 36   # checkpoint after first 30
        assert config.wall_time(60) == 65
        assert config.wall_time(90) == 100
        assert config.wall_time(0) == 0

    def test_preserved_work(self):
        config = CheckpointConfig(interval=30, overhead=5)
        assert config.preserved_work(0, 120) == 0
        assert config.preserved_work(34, 120) == 0    # first ckpt at 35
        assert config.preserved_work(35, 120) == 30
        assert config.preserved_work(71, 120) == 60
        assert config.preserved_work(10_000, 45) == 45  # capped at work

    def test_validation(self):
        with pytest.raises(ConfigError):
            CheckpointConfig(interval=0, overhead=1)
        with pytest.raises(ConfigError):
            CheckpointConfig(interval=10, overhead=-1)
        with pytest.raises(ConfigError):
            CheckpointConfig(10, 1).wall_time(-1)
        with pytest.raises(ConfigError):
            CheckpointConfig(10, 1).preserved_work(-1, 10)


class TestCheckpointedExecution:
    def _run(self, length=hours(4), rate=0.999, checkpointing=None, retry=False,
             spot_seed=3):
        from repro.policies.carbon_time import CarbonTime
        from repro.policies.wrappers import SpotFirst

        jobs = [Job(job_id=0, arrival=0, length=length, cpus=1)]
        policy = SpotFirst(CarbonTime(), spot_max_length=hours(6))
        return run_simulation(
            WorkloadTrace(jobs), flat(), policy,
            queues=spot_queue(), eviction_model=HourlyHazard(rate),
            checkpointing=checkpointing, retry_spot=retry, spot_seed=spot_seed,
        )

    def test_checkpoint_preserves_progress(self):
        config = CheckpointConfig(interval=30, overhead=2)
        lost_plain, lost_ckpt = [], []
        for seed in range(10):
            lost_plain.append(
                self._run(rate=0.5, spot_seed=seed).records[0].lost_cpu_minutes
            )
            lost_ckpt.append(
                self._run(rate=0.5, checkpointing=config, spot_seed=seed)
                .records[0].lost_cpu_minutes
            )
        # Over a spread of eviction draws, checkpoints preserve real work.
        assert np.mean(lost_ckpt) < np.mean(lost_plain)
        assert min(lost_ckpt) < min(lost_plain) or max(lost_ckpt) < max(lost_plain)

    def test_overhead_accounted_without_eviction(self):
        config = CheckpointConfig(interval=60, overhead=5)
        from repro.policies.carbon_time import CarbonTime
        from repro.policies.wrappers import SpotFirst

        jobs = [Job(job_id=0, arrival=0, length=180, cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(),
            SpotFirst(CarbonTime(), spot_max_length=hours(6)),
            queues=spot_queue(), checkpointing=config,
        )
        record = result.records[0]
        # 180 min work = 2 full intervals -> 2 checkpoints -> 190 wall.
        assert record.finish == 190
        assert record.checkpoint_overhead_minutes == 10
        assert record.evictions == 0
        # Occupancy = work + overhead; the user waits for the overhead.
        executed = sum(i.end - i.start for i in record.usage)
        assert executed == 190
        assert record.waiting_time == 10

    def test_retry_spot_stays_on_spot(self):
        config = CheckpointConfig(interval=30, overhead=2)
        record = self._run(rate=0.7, checkpointing=config, retry=True).records[0]
        assert record.evictions >= 1
        # All (or all but the final fallback) attempts run on spot.
        assert record.usage[0].option is PurchaseOption.SPOT
        assert record.usage[1].option in (
            PurchaseOption.SPOT, PurchaseOption.ON_DEMAND,
        )

    def test_retry_without_checkpointing_rejected(self):
        with pytest.raises(SimulationError):
            self._run(retry=True)

    def test_conservation_with_checkpointing(self):
        config = CheckpointConfig(interval=30, overhead=2)
        result = self._run(rate=0.5, checkpointing=config, retry=True)
        record = result.records[0]
        executed = sum(i.end - i.start for i in record.usage) * record.cpus
        # Occupancy = useful work + lost work + checkpoint overhead.
        assert executed == pytest.approx(
            record.length * record.cpus
            + record.lost_cpu_minutes
            + record.checkpoint_overhead_minutes
        )

    def test_cheaper_than_progress_loss_at_high_rates(self):
        """The deferred trade-off: checkpointing pays off when evictions
        are frequent relative to job length."""
        config = CheckpointConfig(interval=30, overhead=2)
        costs_plain = []
        costs_ckpt = []
        for seed in range(8):
            costs_plain.append(
                self._run(rate=0.5, spot_seed=seed).records[0].usage_cost
            )
            costs_ckpt.append(
                self._run(rate=0.5, checkpointing=config, retry=True, spot_seed=seed)
                .records[0].usage_cost
            )
        assert np.mean(costs_ckpt) < np.mean(costs_plain)
