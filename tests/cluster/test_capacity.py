"""Reserved pool conservation invariants."""

import pytest

from repro.cluster.capacity import ReservedPool
from repro.errors import CapacityError, ConfigError


class TestReservedPool:
    def test_initial_state(self):
        pool = ReservedPool(8)
        assert pool.capacity == 8
        assert pool.free == 8
        assert pool.in_use == 0

    def test_allocate_release_cycle(self):
        pool = ReservedPool(4)
        pool.allocate(3)
        assert pool.free == 1
        pool.release(2)
        assert pool.free == 3
        pool.release(1)
        assert pool.free == 4

    def test_can_fit(self):
        pool = ReservedPool(2)
        assert pool.can_fit(2)
        pool.allocate(2)
        assert not pool.can_fit(1)

    def test_over_allocation_rejected(self):
        pool = ReservedPool(2)
        with pytest.raises(CapacityError):
            pool.allocate(3)

    def test_over_release_rejected(self):
        pool = ReservedPool(2)
        pool.allocate(1)
        with pytest.raises(CapacityError):
            pool.release(2)

    def test_zero_capacity_pool(self):
        pool = ReservedPool(0)
        assert not pool.can_fit(1)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigError):
            ReservedPool(-1)

    def test_rejects_nonpositive_queries(self):
        pool = ReservedPool(2)
        with pytest.raises(CapacityError):
            pool.can_fit(0)
        with pytest.raises(CapacityError):
            pool.release(0)
