"""Pricing model: the reserved/on-demand/spot economics."""

import pytest

from repro.cluster.pricing import DEFAULT_PRICING, PricingModel, PurchaseOption
from repro.errors import ConfigError


class TestRates:
    def test_paper_defaults(self):
        assert DEFAULT_PRICING.on_demand_hourly == pytest.approx(0.0624)
        assert DEFAULT_PRICING.reserved_hourly == pytest.approx(0.0624 * 0.4)
        assert DEFAULT_PRICING.spot_hourly == pytest.approx(0.0624 * 0.2)

    def test_hourly_rate_dispatch(self):
        assert DEFAULT_PRICING.hourly_rate(PurchaseOption.ON_DEMAND) == 0.0624
        assert DEFAULT_PRICING.hourly_rate(PurchaseOption.RESERVED) == pytest.approx(
            0.0624 * 0.4
        )
        assert DEFAULT_PRICING.hourly_rate(PurchaseOption.SPOT) == pytest.approx(
            0.0624 * 0.2
        )


class TestUsageCost:
    def test_on_demand_metered(self):
        assert DEFAULT_PRICING.usage_cost(PurchaseOption.ON_DEMAND, 120) == (
            pytest.approx(0.0624 * 2)
        )

    def test_reserved_usage_is_free(self):
        """Reserved usage is covered by the upfront payment."""
        assert DEFAULT_PRICING.usage_cost(PurchaseOption.RESERVED, 10_000) == 0.0

    def test_spot_discount(self):
        spot = DEFAULT_PRICING.usage_cost(PurchaseOption.SPOT, 60)
        on_demand = DEFAULT_PRICING.usage_cost(PurchaseOption.ON_DEMAND, 60)
        assert spot == pytest.approx(0.2 * on_demand)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            DEFAULT_PRICING.usage_cost(PurchaseOption.SPOT, -1)


class TestReservedUpfront:
    def test_paid_for_whole_horizon(self):
        cost = DEFAULT_PRICING.reserved_upfront(10, 60 * 24)
        assert cost == pytest.approx(0.0624 * 0.4 * 10 * 24)

    def test_zero_pool_is_free(self):
        assert DEFAULT_PRICING.reserved_upfront(0, 10_000) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            DEFAULT_PRICING.reserved_upfront(-1, 100)


class TestBreakeven:
    def test_breakeven_equals_fraction(self):
        assert DEFAULT_PRICING.breakeven_utilization() == pytest.approx(0.4)

    def test_effective_price_at_full_utilization(self):
        assert DEFAULT_PRICING.effective_reserved_hourly(1.0) == pytest.approx(
            DEFAULT_PRICING.reserved_hourly
        )

    def test_effective_price_at_breakeven_equals_on_demand(self):
        effective = DEFAULT_PRICING.effective_reserved_hourly(0.4)
        assert effective == pytest.approx(DEFAULT_PRICING.on_demand_hourly)

    def test_low_utilization_is_worse_than_on_demand(self):
        assert DEFAULT_PRICING.effective_reserved_hourly(0.2) > (
            DEFAULT_PRICING.on_demand_hourly
        )

    def test_rejects_bad_utilization(self):
        with pytest.raises(ConfigError):
            DEFAULT_PRICING.effective_reserved_hourly(0.0)


class TestValidationAndTax:
    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigError):
            PricingModel(reserved_fraction=0.0)
        with pytest.raises(ConfigError):
            PricingModel(spot_fraction=1.5)
        with pytest.raises(ConfigError):
            PricingModel(on_demand_hourly=0.0)

    def test_with_carbon_price(self):
        taxed = DEFAULT_PRICING.with_carbon_price(0.05)
        assert taxed.carbon_price_per_kg == 0.05
        assert taxed.on_demand_hourly == DEFAULT_PRICING.on_demand_hourly

    def test_rejects_negative_tax(self):
        with pytest.raises(ConfigError):
            PricingModel(carbon_price_per_kg=-1)
