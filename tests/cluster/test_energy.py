"""Energy model."""

import pytest

from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.errors import ConfigError


class TestEnergyModel:
    def test_active_kw(self):
        model = EnergyModel(watts_per_cpu=10.0)
        assert model.active_kw(5) == pytest.approx(0.05)

    def test_energy_kwh(self):
        model = EnergyModel(watts_per_cpu=100.0)
        assert model.energy_kwh(2, 30) == pytest.approx(0.1)

    def test_zero_cpus(self):
        assert DEFAULT_ENERGY.active_kw(0) == 0.0

    def test_idle_default_zero(self):
        """Paper: reserved instances are off when idle."""
        assert DEFAULT_ENERGY.idle_watts_per_cpu == 0.0

    def test_rejects_bad_power(self):
        with pytest.raises(ConfigError):
            EnergyModel(watts_per_cpu=0)
        with pytest.raises(ConfigError):
            EnergyModel(watts_per_cpu=10, idle_watts_per_cpu=-1)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigError):
            DEFAULT_ENERGY.energy_kwh(1, -5)

    def test_rejects_negative_cpus(self):
        with pytest.raises(ConfigError):
            DEFAULT_ENERGY.active_kw(-1)
