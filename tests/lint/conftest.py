"""Shared helpers for the simlint test suite.

Rule tests feed inline source snippets through one rule at a time; the
snippets live in strings (not on-disk fixture files) so the repo-wide
``python -m repro.lint src tests`` run stays clean.
"""

import textwrap

import pytest

from repro.lint import Finding, ModuleContext, get_rule, lint_module


@pytest.fixture
def check():
    """Run one rule over a source snippet; return its findings."""

    def run(source: str, code: str, module: str = "repro.fake") -> list[Finding]:
        context = ModuleContext.from_source(
            textwrap.dedent(source), path="src/repro/fake.py", module=module
        )
        return lint_module(context, [get_rule(code)])

    return run
