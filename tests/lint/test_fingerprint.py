"""Property tests for the AST-normalized fingerprints behind the salt.

The cache's code-version salt must be invariant under everything the
interpreter ignores (comments, docstrings, formatting) and sensitive to
everything it does not (constants, operators, statements, names).  The
hypothesis properties pin the invariance over arbitrary comment and
docstring content; the parametrized cases pin one example per semantic
edit class.
"""

from __future__ import annotations

import textwrap

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lint.analysis.fingerprint import (
    fingerprint_files,
    fingerprint_source,
    normalized_dump,
)

BASE = textwrap.dedent(
    '''
    """Module docstring."""


    def added_carbon_g(rate_g, minutes):
        """Docstring."""
        total_g = rate_g * minutes
        return total_g + 1
    '''
).lstrip()

# Printable ASCII without newlines or quote characters, so injected text
# stays inside one comment or docstring literal.
_FILLER = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=126, blacklist_characters='"\\'
    ),
    max_size=50,
)


class TestInvariance:
    @given(comment=_FILLER)
    def test_any_comment_line_is_invisible(self, comment):
        commented = BASE.replace(
            "total_g = rate_g * minutes",
            f"total_g = rate_g * minutes  # {comment}",
        )
        assert fingerprint_source(commented) == fingerprint_source(BASE)

    @given(docstring=_FILLER)
    def test_any_docstring_content_is_invisible(self, docstring):
        redocumented = BASE.replace('"""Docstring."""', f'"""{docstring}"""')
        assert fingerprint_source(redocumented) == fingerprint_source(BASE)

    @given(blank_lines=st.integers(min_value=0, max_value=5))
    def test_blank_lines_are_invisible(self, blank_lines):
        padded = BASE.replace("\n\n\n", "\n" * (blank_lines + 1), 1)
        assert fingerprint_source(padded) == fingerprint_source(BASE)

    def test_docstring_only_body_normalizes_like_pass(self):
        assert fingerprint_source('def f():\n    """Doc."""\n') == (
            fingerprint_source("def f():\n    pass\n")
        )

    def test_removing_the_module_docstring_is_invisible(self):
        stripped = BASE.replace('"""Module docstring."""\n', "")
        assert fingerprint_source(stripped) == fingerprint_source(BASE)


class TestSensitivity:
    @pytest.mark.parametrize(
        "before, after",
        [
            ("return total_g + 1", "return total_g + 2"),  # constant
            ("return total_g + 1", "return total_g - 1"),  # operator
            ("rate_g * minutes", "rate_g / minutes"),  # expression shape
            ("total_g = rate_g", "total_kwh = rate_g"),  # renamed binding
            ('"""Docstring."""', '"""Docstring."""\n    x = 0'),  # new statement
            ("def added_carbon_g(rate_g, minutes):",
             "def added_carbon_g(rate_g, minutes=5):"),  # new default
        ],
    )
    def test_semantic_edits_change_the_fingerprint(self, before, after):
        edited = BASE.replace(before, after)
        assert edited != BASE
        assert fingerprint_source(edited) != fingerprint_source(BASE)

    @given(a=st.integers(), b=st.integers())
    def test_distinct_constants_never_collide(self, a, b):
        left = fingerprint_source(f"x = {a}")
        right = fingerprint_source(f"x = {b}")
        assert (left == right) == (a == b)


class TestFingerprintFiles:
    def test_rename_changes_the_digest(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        one = fingerprint_files(tmp_path, [tmp_path / "a.py"])
        (tmp_path / "a.py").rename(tmp_path / "b.py")
        two = fingerprint_files(tmp_path, [tmp_path / "b.py"])
        assert one != two

    def test_order_of_the_file_list_is_irrelevant(self, tmp_path):
        for name in ("a.py", "b.py"):
            (tmp_path / name).write_text(f"# {name}\nx = 1\n", encoding="utf-8")
        files = [tmp_path / "a.py", tmp_path / "b.py"]
        assert fingerprint_files(tmp_path, files) == (
            fingerprint_files(tmp_path, list(reversed(files)))
        )

    def test_unparseable_file_falls_back_to_byte_hashing(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def (\n", encoding="utf-8")
        one = fingerprint_files(tmp_path, [bad])
        bad.write_text("def (  # a comment now matters\n", encoding="utf-8")
        two = fingerprint_files(tmp_path, [bad])
        assert one != two

    def test_comment_edit_in_parseable_file_is_invisible(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n", encoding="utf-8")
        one = fingerprint_files(tmp_path, [good])
        good.write_text("x = 1  # annotated\n", encoding="utf-8")
        two = fingerprint_files(tmp_path, [good])
        assert one == two

    def test_normalized_dump_rejects_bad_source(self):
        with pytest.raises(SyntaxError):
            normalized_dump("def (:\n")
