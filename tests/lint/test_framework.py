"""Framework-level tests: registry, suppressions, runner, and CLI."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.lint import (
    Finding,
    ModuleContext,
    Suppressions,
    all_rules,
    get_rule,
    lint_paths,
    module_name_for,
)
from repro.lint.cli import main

EXPECTED_CODES = [f"SIM00{i}" for i in range(1, 10)] + [
    "SIM101",
    "SIM102",
    "SIM103",
]


class TestRegistry:
    def test_all_rules_registered(self):
        assert [rule.code for rule in all_rules()] == EXPECTED_CODES

    def test_rules_have_names_and_rationales(self):
        for rule in all_rules():
            assert rule.name
            assert rule.rationale

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("sim001").code == "SIM001"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError):
            get_rule("SIM999")


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for(Path("src/repro/policies/base.py")) == (
            "repro.policies.base"
        )

    def test_init_collapses_to_package(self):
        assert module_name_for(Path("src/repro/lint/__init__.py")) == "repro.lint"

    def test_tests_layout(self):
        assert module_name_for(Path("tests/lint/test_rules.py")) == (
            "tests.lint.test_rules"
        )


class TestSuppressions:
    def test_line_scope(self):
        suppressions = Suppressions.parse("x = 1  # simlint: disable=SIM001\ny = 2\n")
        on_line = Finding("f.py", 1, 0, "SIM001", "m")
        assert suppressions.is_suppressed(on_line)
        assert not suppressions.is_suppressed(Finding("f.py", 2, 0, "SIM001", "m"))
        assert not suppressions.is_suppressed(Finding("f.py", 1, 0, "SIM002", "m"))

    def test_multiple_codes_and_all(self):
        suppressions = Suppressions.parse("x = 1  # simlint: disable=SIM001, SIM003\n")
        assert suppressions.is_suppressed(Finding("f.py", 1, 0, "SIM003", "m"))
        blanket = Suppressions.parse("x = 1  # simlint: disable=all\n")
        assert blanket.is_suppressed(Finding("f.py", 1, 0, "SIM007", "m"))

    def test_file_wide(self):
        suppressions = Suppressions.parse("# simlint: disable-file=SIM008\nx = 1\n")
        assert suppressions.is_suppressed(Finding("f.py", 99, 0, "SIM008", "m"))

    def test_syntax_errors_never_suppressible(self):
        suppressions = Suppressions.parse("# simlint: disable-file=all\n")
        assert not suppressions.is_suppressed(Finding("f.py", 1, 0, "SIM000", "m"))


class TestRunner:
    def test_syntax_error_becomes_sim000(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        findings = lint_paths([tmp_path])
        assert [finding.code for finding in findings] == ["SIM000"]

    def test_select_and_ignore(self, tmp_path):
        module = tmp_path / "src" / "repro" / "fake.py"
        module.parent.mkdir(parents=True)
        module.write_text("def run(jobs=[]):\n    return jobs\n")
        # SIM006 (mutable default) and SIM008 (no docstrings) both apply.
        assert {f.code for f in lint_paths([tmp_path])} == {"SIM006", "SIM008"}
        assert {f.code for f in lint_paths([tmp_path], select=["SIM006"])} == {
            "SIM006"
        }
        assert {f.code for f in lint_paths([tmp_path], ignore=["SIM008"])} == {
            "SIM006"
        }

    def test_unknown_select_code_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="SIM999"):
            lint_paths([tmp_path], select=["SIM999"])

    def test_unknown_ignore_code_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="SIM042"):
            lint_paths([tmp_path], ignore=["SIM042"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="no such file"):
            lint_paths([tmp_path / "does-not-exist"])

    def test_pycache_skipped(self, tmp_path):
        cached = tmp_path / "__pycache__" / "junk.py"
        cached.parent.mkdir()
        cached.write_text("def broken(:\n")
        assert lint_paths([tmp_path]) == []

    def test_findings_sorted_by_location(self, tmp_path):
        module = tmp_path / "src" / "repro" / "fake.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "def second(jobs=[]):\n    return jobs\n\n"
            "def first(tags=set()):\n    return tags\n"
        )
        findings = lint_paths([tmp_path], select=["SIM006"])
        assert [finding.line for finding in findings] == [1, 4]


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        module = tmp_path / "src" / "repro" / "fake.py"
        module.parent.mkdir(parents=True)
        module.write_text('"""Fake."""\n\n__all__ = []\n')
        assert main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().err

    def test_findings_exit_one_and_render(self, tmp_path, capsys):
        module = tmp_path / "src" / "repro" / "fake.py"
        module.parent.mkdir(parents=True)
        module.write_text('"""Fake."""\n\ndef run(jobs=[]):\n    return jobs\n')
        assert main([str(tmp_path), "--select", "SIM006"]) == 1
        out = capsys.readouterr().out
        assert "SIM006" in out and "fake.py:3:" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in EXPECTED_CODES:
            assert code in out

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        assert main(["--select", "SIM999", str(tmp_path)]) == 2
        assert "SIM999" in capsys.readouterr().err
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_module_entry_point(self, tmp_path):
        module = tmp_path / "src" / "repro" / "fake.py"
        module.parent.mkdir(parents=True)
        module.write_text('"""Fake."""\n\n__all__ = []\n')
        root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=root,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr


class TestSelfClean:
    def test_lint_package_lints_itself_clean(self):
        assert lint_paths(["src/repro/lint"]) == []
