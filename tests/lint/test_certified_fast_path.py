"""The engine fast path must stay inside the certified set (SIM102).

The batched ``decide_many`` hooks are reached dynamically (the engine
looks them up on the policy instance), so they are registered as digest
entry points in :data:`DIGEST_ENTRY_PATTERNS`.  These tests pin that
registration and the consequence that matters: every fast-path module
-- the scoring helpers, the batched policies, and the engine itself --
appears in the certification report's file set, and therefore in the
result cache's code-version salt.  Losing any of them would let a
semantic edit to the fast path silently serve stale cached sweeps.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.lint.analysis.certify import certified_files, entry_functions
from repro.lint.analysis.entrypoints import DIGEST_ENTRY_PATTERNS
from repro.lint.analysis.project import ProjectContext

REPRO_ROOT = Path(repro.__file__).resolve().parent

#: Source files implementing the array fast path, relative to the
#: ``repro`` package root.
FAST_PATH_FILES = (
    "policies/scoring.py",
    "policies/lowest_window.py",
    "policies/carbon_time.py",
    "policies/price_aware.py",
    "policies/wrappers.py",
    "simulator/engine.py",
    "carbon/trace.py",
    "carbon/forecast.py",
)


@pytest.fixture(scope="module")
def project() -> ProjectContext:
    return ProjectContext.from_root(REPRO_ROOT, package="repro")


def test_decide_many_is_a_registered_entry_pattern():
    assert "*.decide_many" in DIGEST_ENTRY_PATTERNS


def test_decide_many_hooks_are_entry_functions(project):
    entries = entry_functions(project)
    batched = {name for name in entries if name.endswith(".decide_many")}
    assert "repro.policies.lowest_window.LowestWindow.decide_many" in batched
    assert "repro.policies.carbon_time.CarbonTime.decide_many" in batched


def test_fast_path_files_are_certified(project):
    certified = {path.resolve() for path in certified_files(project)}
    missing = [
        relative
        for relative in FAST_PATH_FILES
        if (REPRO_ROOT / relative).resolve() not in certified
    ]
    assert not missing, (
        f"fast-path files {missing} dropped out of the certified set; the "
        "cache salt no longer covers them"
    )
