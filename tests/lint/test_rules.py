"""Positive/negative/suppression fixtures for every SIM rule."""

import pytest

from repro.lint import lint_paths
from repro.lint.rules.sim002_integer_minutes import is_minute_name
from repro.lint.rules.sim003_unit_suffixes import unit_family


def codes(findings):
    return [finding.code for finding in findings]


class TestSIM001Determinism:
    def test_global_random_fires(self, check):
        source = """
            import random

            def jitter():
                return random.random()
        """
        assert codes(check(source, "SIM001")) == ["SIM001"]

    def test_from_random_import_fires(self, check):
        source = """
            from random import randint

            def pick():
                return randint(0, 10)
        """
        assert codes(check(source, "SIM001")) == ["SIM001"]

    def test_numpy_module_level_rng_fires(self, check):
        source = """
            import numpy as np

            def sample():
                return np.random.rand(3)
        """
        assert codes(check(source, "SIM001")) == ["SIM001"]

    def test_wall_clock_fires(self, check):
        source = """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
        """
        assert codes(check(source, "SIM001")) == ["SIM001", "SIM001"]

    def test_seeded_generator_is_clean(self, check):
        source = """
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
        """
        assert check(source, "SIM001") == []

    def test_does_not_apply_to_tests(self, check):
        source = """
            import random

            def helper():
                return random.random()
        """
        assert check(source, "SIM001", module="tests.test_fake") == []

    def test_suppression_silences(self, check):
        source = """
            import random

            def jitter():
                return random.random()  # simlint: disable=SIM001
        """
        assert check(source, "SIM001") == []


class TestSIM002IntegerMinutes:
    def test_float_division_into_start_fires(self, check):
        source = """
            def plan(total):
                start = total / 2
                return start
        """
        assert codes(check(source, "SIM002")) == ["SIM002"]

    def test_float_literal_keyword_fires(self, check):
        source = """
            def submit(make_job):
                return make_job(arrival=1.5)
        """
        assert codes(check(source, "SIM002")) == ["SIM002"]

    def test_float_annotation_fires(self, check):
        source = """
            class Record:
                finish: float = 0
        """
        assert codes(check(source, "SIM002")) == ["SIM002"]

    def test_floor_division_is_clean(self, check):
        source = """
            def plan(total):
                start = total // 2
                end = int(round(total * 1.5))
                return start, end
        """
        assert check(source, "SIM002") == []

    def test_cpu_minutes_and_rates_are_exempt(self, check):
        source = """
            def account(record, rate):
                lost_cpu_minutes = record.lost / 2.0
                lambda_per_minute = rate / 60
                return lost_cpu_minutes, lambda_per_minute
        """
        assert check(source, "SIM002") == []

    def test_suppression_silences(self, check):
        source = """
            def plan(total):
                start = total / 2  # simlint: disable=SIM002
                return start
        """
        assert check(source, "SIM002") == []

    def test_name_classifier(self):
        assert is_minute_name("arrival")
        assert is_minute_name("first_start")
        assert is_minute_name("warmup_minutes")
        assert not is_minute_name("lost_cpu_minutes")
        assert not is_minute_name("cpu_minutes")
        assert not is_minute_name("lambda_per_minute")
        assert not is_minute_name("carbon_g")


class TestSIM003UnitSuffixes:
    def test_mixed_unit_addition_fires(self, check):
        source = """
            def total(carbon_g, energy_kwh):
                return carbon_g + energy_kwh
        """
        assert codes(check(source, "SIM003")) == ["SIM003"]

    def test_mixed_unit_keyword_fires(self, check):
        source = """
            def book(ledger, energy_kwh):
                ledger.add(usage_cost=energy_kwh)
        """
        assert codes(check(source, "SIM003")) == ["SIM003"]

    def test_bare_quantity_name_fires(self, check):
        source = """
            def footprint(forecaster, start, length):
                carbon = forecaster.window_carbon(start, length)
                return carbon
        """
        assert codes(check(source, "SIM003")) == ["SIM003"]

    def test_same_family_and_trace_constructors_are_clean(self, check):
        source = """
            def combine(carbon_g, baseline_carbon_g, region):
                carbon = region_trace(region)  # a trace object, not a number
                return carbon_g + baseline_carbon_g
        """
        assert check(source, "SIM003") == []

    def test_suppression_silences(self, check):
        source = """
            def total(carbon_g, energy_kwh):
                return carbon_g + energy_kwh  # simlint: disable=SIM003
        """
        assert check(source, "SIM003") == []

    def test_family_classifier(self):
        assert unit_family("carbon_g") == "carbon-mass[g]"
        assert unit_family("energy_kwh") == "energy[kWh]"
        assert unit_family("usage_cost") == unit_family("price_usd")
        assert unit_family("price_per_hour") == "rate[/h]"
        assert unit_family("wrapper_kwargs") is None


class TestSIM004PolicyRegistry:
    def test_unregistered_policy_fires(self, check):
        source = """
            class Fancy(Policy):
                def decide(self, job, ctx):
                    return None
        """
        findings = check(source, "SIM004", module="repro.policies.fake")
        assert codes(findings) == ["SIM004"]
        assert "not registered" in findings[0].message

    def test_missing_decide_fires(self, check):
        source = """
            class CarbonTime(Policy):
                name = "broken"
        """
        findings = check(source, "SIM004", module="repro.policies.fake")
        assert codes(findings) == ["SIM004"]
        assert "decide" in findings[0].message

    def test_registered_policy_is_clean(self, check):
        source = """
            class CarbonTime(Policy):
                def decide(self, job, ctx):
                    return None
        """
        assert check(source, "SIM004", module="repro.policies.fake") == []

    def test_private_and_abstract_are_exempt(self, check):
        source = """
            from abc import abstractmethod

            class _Scaffold(Policy):
                pass

            class Base(Policy):
                @abstractmethod
                def decide(self, job, ctx):
                    ...
        """
        assert check(source, "SIM004", module="repro.policies.fake") == []

    def test_only_applies_under_policies(self, check):
        source = """
            class Fancy(Policy):
                pass
        """
        assert check(source, "SIM004", module="repro.workload.fake") == []

    def test_suppression_silences(self, check):
        source = """
            class Fancy(Policy):  # simlint: disable=SIM004
                def decide(self, job, ctx):
                    return None
        """
        assert check(source, "SIM004", module="repro.policies.fake") == []


class TestSIM005ExperimentRegistry:
    @pytest.fixture
    def tree(self, tmp_path):
        experiments = tmp_path / "src" / "repro" / "experiments"
        experiments.mkdir(parents=True)
        (tmp_path / "benchmarks").mkdir()
        (experiments / "registry.py").write_text(
            '"""Registry."""\nfrom repro.experiments.fig01_demo import run\n'
        )
        return tmp_path

    def add_experiment(self, tree, stem, registered=True, benchmarked=True):
        experiments = tree / "src" / "repro" / "experiments"
        (experiments / f"{stem}.py").write_text(f'"""Experiment {stem}."""\n')
        if registered:
            with open(experiments / "registry.py", "a") as handle:
                handle.write(f"from repro.experiments.{stem} import run\n")
        if benchmarked:
            (tree / "benchmarks" / f"bench_{stem}.py").write_text(
                f'"""Bench {stem}."""\n'
            )

    def test_unregistered_experiment_fires(self, tree):
        self.add_experiment(tree, "fig99_demo", registered=False)
        findings = lint_paths([tree / "src"], select=["SIM005"])
        assert [finding.code for finding in findings] == ["SIM005"]
        assert "not referenced" in findings[0].message

    def test_missing_benchmark_fires(self, tree):
        self.add_experiment(tree, "fig98_demo", benchmarked=False)
        findings = lint_paths([tree / "src"], select=["SIM005"])
        assert "bench_fig98_demo" in findings[0].message

    def test_wired_experiment_is_clean(self, tree):
        self.add_experiment(tree, "fig97_demo")
        assert lint_paths([tree / "src"], select=["SIM005"]) == []

    def test_suppression_silences(self, tree):
        experiments = tree / "src" / "repro" / "experiments"
        (experiments / "fig96_demo.py").write_text(
            '"""Experiment."""  # simlint: disable=SIM005\n'
        )
        assert lint_paths([tree / "src"], select=["SIM005"]) == []

    def test_real_tree_is_wired(self):
        assert lint_paths(["src/repro/experiments"], select=["SIM005"]) == []


class TestSIM006MutableDefaults:
    def test_list_default_fires(self, check):
        source = """
            def run(jobs=[]):
                return jobs
        """
        assert codes(check(source, "SIM006")) == ["SIM006"]

    def test_dict_call_and_kwonly_fire(self, check):
        source = """
            def run(*, options=dict(), tags=set()):
                return options, tags
        """
        assert codes(check(source, "SIM006")) == ["SIM006", "SIM006"]

    def test_applies_to_tests_too(self, check):
        source = """
            def helper(acc=[]):
                return acc
        """
        assert codes(check(source, "SIM006", module="tests.test_fake")) == ["SIM006"]

    def test_none_default_is_clean(self, check):
        source = """
            def run(jobs=None, limit=3, name="x"):
                return jobs or []
        """
        assert check(source, "SIM006") == []

    def test_suppression_silences(self, check):
        source = """
            def run(jobs=[]):  # simlint: disable=SIM006
                return jobs
        """
        assert check(source, "SIM006") == []


class TestSIM007ExportHygiene:
    def test_phantom_export_fires(self, check):
        source = """
            __all__ = ["missing"]
        """
        findings = check(source, "SIM007")
        assert codes(findings) == ["SIM007"]
        assert "missing" in findings[0].message

    def test_unexported_public_def_fires(self, check):
        source = """
            __all__ = ["shown"]

            def shown():
                return 1

            def hidden():
                return 2
        """
        findings = check(source, "SIM007")
        assert codes(findings) == ["SIM007"]
        assert "hidden" in findings[0].message

    def test_private_and_imported_names_are_clean(self, check):
        source = """
            from os import path

            __all__ = ["CONSTANT", "shown", "path"]

            CONSTANT = 3

            def shown():
                return _helper()

            def _helper():
                return 1
        """
        assert check(source, "SIM007") == []

    def test_public_def_check_skips_test_modules(self, check):
        source = """
            __all__ = []

            def helper():
                return 1
        """
        assert check(source, "SIM007", module="tests.test_fake") == []

    def test_suppression_silences(self, check):
        source = """
            __all__ = ["missing"]  # simlint: disable=SIM007
        """
        assert check(source, "SIM007") == []


class TestSIM008Docstrings:
    def test_missing_module_docstring_fires(self, check):
        source = """
            X = 1
        """
        assert codes(check(source, "SIM008")) == ["SIM008"]

    def test_missing_public_def_docstrings_fire(self, check):
        source = """
            '''Module.'''

            def shown():
                return 1

            class Thing:
                pass
        """
        assert len(check(source, "SIM008")) == 2

    def test_documented_and_private_are_clean(self, check):
        source = """
            '''Module.'''

            def shown():
                '''Documented.'''

            def _hidden():
                return 1
        """
        assert check(source, "SIM008") == []

    def test_does_not_apply_to_tests(self, check):
        source = """
            def test_something():
                assert True
        """
        assert check(source, "SIM008", module="tests.test_fake") == []

    def test_suppression_silences(self, check):
        source = """
            X = 1  # simlint: disable=SIM008
        """
        assert check(source, "SIM008") == []


class TestSIM009MethodDocstrings:
    SOURCE = """
        '''Module.'''

        class Result:
            '''Documented class.'''

            def accessor(self):
                return 1

            def documented(self):
                '''Fine.'''

            def _private(self):
                return 2

            def __repr__(self):
                return "Result()"
    """

    def test_undocumented_public_method_fires_in_simulator(self, check):
        findings = check(self.SOURCE, "SIM009", module="repro.simulator.fake")
        assert codes(findings) == ["SIM009"]
        assert "Result.'accessor'" in findings[0].message

    def test_obs_package_is_also_strict(self, check):
        assert len(check(self.SOURCE, "SIM009", module="repro.obs.fake")) == 1

    def test_other_packages_are_exempt(self, check):
        assert check(self.SOURCE, "SIM009", module="repro.policies.fake") == []

    def test_private_classes_are_exempt(self, check):
        source = """
            '''Module.'''

            class _Internal:
                '''Private.'''

                def accessor(self):
                    return 1
        """
        assert check(source, "SIM009", module="repro.simulator.fake") == []

    def test_suppression_silences(self, check):
        source = """
            '''Module.'''

            class Result:
                '''Documented.'''

                def accessor(self):  # simlint: disable=SIM009
                    return 1
        """
        assert check(source, "SIM009", module="repro.simulator.fake") == []
