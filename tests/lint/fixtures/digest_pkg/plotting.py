"""Not imported by the engine: stays outside the certified set."""


def render(values):
    """Pretend to draw a figure."""
    return len(values)
