"""A digest entry point reaching hazards only through other modules."""

from digest_pkg.helpers import jitter, order_regions, sample_clock


class Engine:
    """Minimal engine shape matching the ``*.Engine.run`` entry pattern."""

    def run(self, steps, regions):
        """Reach every hazard in ``helpers`` two calls deep."""
        total = 0.0
        for _ in range(steps):
            total += jitter()
        for _region in order_regions(regions):
            total += sample_clock()
        return total
