"""Hazard shapes a per-module pass cannot justify flagging.

Line numbers here are golden data for ``tests/lint/test_simcheck.py``;
keep them stable when editing.
"""

import os
import random
import time


def jitter():
    """Unseeded RNG call, digest-reachable (line 14)."""
    return random.random()


def sample_clock():
    """Clock stored as a value (line 19) plus an env read (line 20)."""
    clock = time.time
    if os.getenv("FIXTURE_FLAG"):
        return clock()
    return 0.0


def order_regions(regions):
    """Materializes a set in hash order (line 27)."""
    return list({region for region in regions})


def unreachable_entropy():
    """Never called from an entry point: must NOT be certified."""
    import uuid

    return uuid.uuid4()
