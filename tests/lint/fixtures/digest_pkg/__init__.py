"""Fixture package: digest-reachable determinism hazards (SIM102)."""
