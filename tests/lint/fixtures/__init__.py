"""Fixture mini-packages with *known* simcheck violations.

Each subdirectory is a tiny standalone package analyzed with
``ProjectContext.from_root`` under its own root package, so the golden
tests exercise SIM101/SIM102/SIM103 end to end without depending on the
real ``repro`` tree staying dirty.  Repo-wide lint runs never flag these
files: their modules are named ``tests.lint.fixtures...`` and therefore
fall outside the ``repro`` analysis root.
"""
