"""Callers with known cross-function unit-flow violations.

Line numbers here are golden data for ``tests/lint/test_simcheck.py``;
keep them stable when editing.
"""

from unitflow_pkg.convert import energy_used_kwh, total_footprint_g


def mixed_positional():
    """Passes a kWh quantity to a gram parameter (line 13)."""
    used_kwh = energy_used_kwh(2.0, 3.0)
    return total_footprint_g(used_kwh, 1.0)


def mixed_assignment():
    """Assigns a kWh-returning call to a ``_g`` name (line 18)."""
    total_g = energy_used_kwh(1.0, 1.0)
    return total_g


def shipping_cost(mass_g):
    """Suffixed as money but returns a gram value (line 23)."""
    return mass_g
