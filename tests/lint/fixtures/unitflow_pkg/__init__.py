"""Fixture package: cross-function unit-flow violations (SIM101)."""
