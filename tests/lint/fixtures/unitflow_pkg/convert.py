"""Clean unit-suffixed helpers (the callees; no violations here)."""


def total_footprint_g(base_g, extra_g):
    """Sum two gram quantities."""
    return base_g + extra_g


def energy_used_kwh(draw_kw, hours):
    """Energy drawn over a duration."""
    return draw_kw * hours
