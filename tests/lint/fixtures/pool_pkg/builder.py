"""A lambda smuggled into a spec at its construction site."""

from pool_pkg.spec import Knobs, SimulationSpec


def build_spec(seed):
    """Constructs a spec with an unpicklable lambda argument (line 8)."""
    return SimulationSpec(seed=seed, knobs=Knobs(), hook=lambda x: x + 1)
