"""Boundary types with known pickle hazards.

Line numbers here are golden data for ``tests/lint/test_simcheck.py``;
keep them stable when editing.
"""

import threading
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Knobs:
    """Nested frozen member of the spec closure: no violation."""

    retries: int = 0


@dataclass
class SimulationSpec:
    """Boundary root (line 20): not frozen, with unpicklable fields."""

    seed: int
    knobs: Knobs
    hook: Callable = None
    guard: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class SimulationResult:
    """Result root: frozen not required, handles still forbidden."""

    value: float
    on_done: Callable = None
