"""Fixture package: pool-boundary pickle hazards (SIM103)."""
