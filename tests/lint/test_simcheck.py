"""Golden tests for the whole-program simcheck passes (SIM101-SIM103).

Each fixture mini-package under ``tests/lint/fixtures/`` carries known
violations; these tests pin the exact findings (rule, file, line) plus
the reachability evidence and the certified module set, so any analysis
regression -- a lost call edge, a widened hazard table, a broken
suppression -- shows up as a golden diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.analysis.certify import certified_modules, entry_functions
from repro.lint.analysis.project import ProjectContext
from repro.lint.base import all_rules
from repro.lint.cli import main
from repro.lint.runner import lint_paths_with_project, lint_project

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def fixture_findings():
    """Rule findings per fixture package, as (code, filename, line) plus raw."""
    findings = {}
    for name in ("unitflow_pkg", "digest_pkg", "pool_pkg"):
        project = ProjectContext.from_root(FIXTURES / name)
        findings[name] = lint_project(project, all_rules())
    return findings


def _golden(findings):
    return sorted(
        (finding.code, Path(finding.path).name, finding.line) for finding in findings
    )


class TestUnitFlowGolden:
    def test_exact_findings(self, fixture_findings):
        assert _golden(fixture_findings["unitflow_pkg"]) == [
            ("SIM101", "report.py", 13),  # kWh into a _g positional parameter
            ("SIM101", "report.py", 18),  # kWh call result assigned to total_g
            ("SIM101", "report.py", 24),  # _cost function returning grams
        ]

    def test_kinds_and_families_in_messages(self, fixture_findings):
        messages = sorted(f.message for f in fixture_findings["unitflow_pkg"])
        assert messages[0].startswith("[argument] passing 'used_kwh' (energy[kWh])")
        assert "'base_g' (carbon-mass[g])" in messages[0]
        assert messages[1].startswith("[assignment]")
        assert messages[2].startswith("[return]")

    def test_clean_callee_module_is_not_flagged(self, fixture_findings):
        assert not any(
            Path(f.path).name == "convert.py"
            for f in fixture_findings["unitflow_pkg"]
        )


class TestDigestSafetyGolden:
    def test_exact_findings(self, fixture_findings):
        assert _golden(fixture_findings["digest_pkg"]) == [
            ("SIM102", "helpers.py", 14),  # random.random() two calls deep
            ("SIM102", "helpers.py", 19),  # time.time stored as a value
            ("SIM102", "helpers.py", 20),  # os.getenv read
            ("SIM102", "helpers.py", 27),  # list() over a set comprehension
        ]

    def test_unreachable_hazard_is_not_flagged(self, fixture_findings):
        # uuid.uuid4() in unreachable_entropy never reaches an entry point.
        assert not any(
            "uuid" in f.message for f in fixture_findings["digest_pkg"]
        )

    def test_evidence_is_the_call_chain(self, fixture_findings):
        by_line = {f.line: f for f in fixture_findings["digest_pkg"]}
        assert by_line[14].evidence == (
            "digest_pkg.engine.Engine.run",
            "digest_pkg.helpers.jitter",
        )
        assert "digest-reachable via digest_pkg.engine.Engine.run" in (
            by_line[14].message
        )

    def test_certified_set_is_reachable_files_only(self):
        project = ProjectContext.from_root(FIXTURES / "digest_pkg")
        assert certified_modules(project) == {
            "digest_pkg.engine",
            "digest_pkg.helpers",
        }

    def test_entry_point_binding(self):
        project = ProjectContext.from_root(FIXTURES / "digest_pkg")
        assert sorted(entry_functions(project)) == ["digest_pkg.engine.Engine.run"]


class TestPoolBoundaryGolden:
    def test_exact_findings(self, fixture_findings):
        assert _golden(fixture_findings["pool_pkg"]) == [
            ("SIM103", "builder.py", 8),  # lambda at a construction site
            ("SIM103", "spec.py", 20),  # spec dataclass not frozen
            ("SIM103", "spec.py", 25),  # Callable field on the spec
            ("SIM103", "spec.py", 26),  # threading.Lock field
            ("SIM103", "spec.py", 34),  # Callable field on the result
        ]

    def test_frozen_nested_member_is_clean(self, fixture_findings):
        assert not any(
            "Knobs" in f.message for f in fixture_findings["pool_pkg"]
        )

    def test_result_root_does_not_require_frozen(self, fixture_findings):
        # SimulationResult is not a frozen dataclass, but only specs
        # (cache/dedup keys) must be; no not-frozen finding names it.
        assert not any(
            "SimulationResult" in f.message and "not a frozen" in f.message
            for f in fixture_findings["pool_pkg"]
        )


def _write_engine(tree: Path, body: str) -> None:
    (tree / "src" / "repro").mkdir(parents=True, exist_ok=True)
    (tree / "src" / "repro" / "engine.py").write_text(body, encoding="utf-8")


_HAZARDOUS_ENGINE = '''"""Fixture engine."""

import random


class Engine:
    """Fixture."""

    def run(self):
        """Draw from the global RNG."""
        return random.random()
'''

_TWO_HAZARD_ENGINE = '''"""Fixture engine."""

import random
import time


class Engine:
    """Fixture."""

    def run(self):
        """Draw from the global RNG and the wall clock."""
        return random.random() + time.time()
'''


class TestCliJsonAndBaseline:
    """End-to-end: ``--format json``, ``--baseline``, ``--write-baseline``.

    The tmp tree is shaped ``src/repro/...`` so its modules land under
    the default ``repro`` analysis root without touching the real tree.
    """

    def test_json_report_structure(self, tmp_path, capsys):
        _write_engine(tmp_path, _HAZARDOUS_ENGINE)
        status = main(
            ["--select", "SIM102", "--format", "json", str(tmp_path / "src")]
        )
        report = json.loads(capsys.readouterr().out)
        assert status == 1
        assert report["version"] == 1
        (finding,) = report["findings"]
        assert finding["code"] == "SIM102"
        assert finding["line"] == 11
        assert finding["evidence"] == ["repro.engine.Engine.run"]
        certification = report["certification"]
        assert certification["entry_points"] == ["repro.engine.Engine.run"]
        assert certification["certified_modules"] == ["repro.engine"]
        assert certification["reachable_functions"] == ["repro.engine.Engine.run"]
        assert certification["certified_files"] == [
            str(tmp_path / "src" / "repro" / "engine.py")
        ]

    def test_baseline_roundtrip_fails_only_on_new_findings(self, tmp_path, capsys):
        _write_engine(tmp_path, _HAZARDOUS_ENGINE)
        baseline = tmp_path / "baseline.json"
        source = str(tmp_path / "src")

        assert main(["--select", "SIM102", "--write-baseline", str(baseline), source]) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert len(payload["keys"]) == 1

        capsys.readouterr()
        assert main(["--select", "SIM102", "--baseline", str(baseline), source]) == 0

        _write_engine(tmp_path, _TWO_HAZARD_ENGINE)
        capsys.readouterr()
        status = main(["--select", "SIM102", "--baseline", str(baseline), source])
        out = capsys.readouterr().out
        assert status == 1
        assert "wall clock" in out  # only the new finding is reported
        assert "global RNG" not in out

    def test_malformed_baseline_is_a_usage_error(self, tmp_path, capsys):
        _write_engine(tmp_path, _HAZARDOUS_ENGINE)
        bad = tmp_path / "bad.json"
        bad.write_text('{"keys": "nope"}', encoding="utf-8")
        assert main(["--baseline", str(bad), str(tmp_path / "src")]) == 2

    def test_suppression_silences_project_findings(self, tmp_path, capsys):
        _write_engine(
            tmp_path,
            _HAZARDOUS_ENGINE.replace(
                "return random.random()",
                "return random.random()  # simlint: disable=SIM102",
            ),
        )
        assert main(["--select", "SIM102", "--quiet", str(tmp_path / "src")]) == 0


class TestRepoIsClean:
    def test_whole_program_passes_are_clean_on_the_repo(self):
        repo = Path(__file__).resolve().parents[2]
        findings, _project = lint_paths_with_project(
            [repo / "src", repo / "tests"],
            select=["SIM101", "SIM102", "SIM103"],
        )
        assert findings == []
