"""Unit tests for the analysis layer's trickier resolution paths.

The golden fixture tests (``test_simcheck.py``) pin end-to-end
behavior; these pin the individual mechanisms -- alias and relative
import resolution, the four call-resolution strategies, evidence-chain
construction, and the import-closure used by the certified salt -- so a
regression is attributable to one mechanism instead of one symptom.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.lint.analysis.callgraph import CallGraph
from repro.lint.analysis.certify import certified_modules
from repro.lint.analysis.project import ProjectContext
from repro.lint.analysis.symbols import ModuleSymbols
from repro.lint.context import ModuleContext


def _project(modules: dict[str, str], root: str = "pkg") -> ProjectContext:
    contexts = [
        ModuleContext.from_source(
            source, path=f"{name.replace('.', '/')}.py", module=name
        )
        for name, source in modules.items()
    ]
    return ProjectContext.from_contexts(contexts, root_package=root)


class TestSymbols:
    def test_import_alias_resolution(self):
        table = ModuleSymbols.build(
            ModuleContext.from_source(
                "import numpy as np\nfrom repro.units import to_kwh as conv\n",
                module="pkg.m",
            )
        )
        assert table.resolve("np.random.rand") == "numpy.random.rand"
        assert table.resolve("conv") == "repro.units.to_kwh"
        assert table.resolve("unknown.thing") == "unknown.thing"

    def test_relative_import_resolution(self):
        table = ModuleSymbols.build(
            ModuleContext.from_source(
                "from .sibling import helper\nfrom ..top import other\n",
                path="pkg/sub/m.py",
                module="pkg.sub.m",
            )
        )
        assert table.resolve("helper") == "pkg.sub.sibling.helper"
        assert table.resolve("other") == "pkg.top.other"

    def test_dataclass_facts(self):
        table = ModuleSymbols.build(
            ModuleContext.from_source(
                "from dataclasses import dataclass\n"
                "@dataclass(frozen=True)\n"
                "class A:\n"
                "    x: int\n"
                "@dataclass\n"
                "class B:\n"
                "    y: str = 'z'\n",
                module="pkg.m",
            )
        )
        assert table.classes["A"].dataclass_frozen
        assert not table.classes["B"].dataclass_frozen
        (field,) = table.classes["B"].fields
        assert field.name == "y" and field.default is not None

    def test_method_params_strip_self(self):
        table = ModuleSymbols.build(
            ModuleContext.from_source(
                "class C:\n    def m(self, a_g, b_kwh):\n        pass\n",
                module="pkg.m",
            )
        )
        assert table.classes["C"].methods["m"].params == ("a_g", "b_kwh")


class TestCallGraph:
    def test_cross_module_call_through_alias(self):
        project = _project(
            {
                "pkg.a": "def target():\n    pass\n",
                "pkg.b": "from pkg import a\ndef caller():\n    a.target()\n",
            }
        )
        graph = project.callgraph()
        assert graph.callees_of("pkg.b.caller") == {"pkg.a.target"}

    def test_self_method_follows_base_class(self):
        project = _project(
            {
                "pkg.base": "class Base:\n    def helper(self):\n        pass\n",
                "pkg.sub": (
                    "from pkg.base import Base\n"
                    "class Sub(Base):\n"
                    "    def run(self):\n"
                    "        self.helper()\n"
                ),
            }
        )
        graph = project.callgraph()
        assert graph.callees_of("pkg.sub.Sub.run") == {"pkg.base.Base.helper"}

    def test_unique_method_fallback(self):
        project = _project(
            {
                "pkg.a": "class Plan:\n    def rng(self):\n        pass\n",
                "pkg.b": "def use(plan):\n    plan.rng()\n",
            }
        )
        graph = project.callgraph()
        assert graph.callees_of("pkg.b.use") == {"pkg.a.Plan.rng"}

    def test_fallback_refuses_ambiguous_names(self):
        project = _project(
            {
                "pkg.a": "class A:\n    def rng(self):\n        pass\n",
                "pkg.b": "class B:\n    def rng(self):\n        pass\n",
                "pkg.c": "def use(x):\n    x.rng()\n",
            }
        )
        assert project.callgraph().callees_of("pkg.c.use") == set()

    def test_fallback_refuses_function_name_collisions(self):
        project = _project(
            {
                "pkg.a": "class A:\n    def rng(self):\n        pass\n",
                "pkg.b": "def rng():\n    pass\n",
                "pkg.c": "def use(x):\n    x.rng()\n",
            }
        )
        # ``x.rng()`` could be the method; ``rng`` is also a free
        # function, so the fallback must not guess.
        assert project.callgraph().callees_of("pkg.c.use") == set()

    def test_constructor_links_to_init(self):
        project = _project(
            {
                "pkg.a": (
                    "class Thing:\n"
                    "    def __init__(self, n):\n"
                    "        self.n = n\n"
                ),
                "pkg.b": "from pkg.a import Thing\ndef make():\n    Thing(3)\n",
            }
        )
        graph = project.callgraph()
        assert graph.callees_of("pkg.b.make") == {"pkg.a.Thing.__init__"}

    def test_reachability_chain_is_breadth_first_evidence(self):
        project = _project(
            {
                "pkg.m": (
                    "def a():\n    b()\n"
                    "def b():\n    c()\n"
                    "def c():\n    pass\n"
                ),
            }
        )
        chains = project.callgraph().reachable(["pkg.m.a"])
        assert chains["pkg.m.c"] == ("pkg.m.a", "pkg.m.b", "pkg.m.c")


class TestCertification:
    def test_import_closure_covers_unresolved_dispatch(self):
        # ``run`` calls nothing resolvable, but the module imports the
        # model module; the certified set must still include it.
        project = _project(
            {
                "pkg.engine": (
                    "from pkg import models\n"
                    "class Engine:\n"
                    "    def run(self, registry):\n"
                    "        return registry['m']()\n"
                ),
                "pkg.models": "def model():\n    return 1\n",
                "pkg.plots": "def draw():\n    pass\n",
            }
        )
        certified = certified_modules(project)
        assert "pkg.models" in certified
        assert "pkg.plots" not in certified

    def test_no_entry_points_is_a_config_error(self):
        project = _project({"pkg.util": "def helper():\n    pass\n"})
        with pytest.raises(ConfigError):
            certified_modules(project)

    def test_out_of_scope_modules_are_ignored(self):
        project = _project(
            {
                "pkg.engine": "class Engine:\n    def run(self):\n        pass\n",
                "other.engine": "class Engine:\n    def run(self):\n        pass\n",
            }
        )
        assert certified_modules(project) == {"pkg.engine"}

    def test_callgraph_is_cached(self):
        project = _project({"pkg.m": "def f():\n    pass\n"})
        assert project.callgraph() is project.callgraph()


class TestCallGraphBuildDirect:
    def test_build_classmethod_matches_project_accessor(self):
        project = _project(
            {
                "pkg.a": "def target():\n    pass\ndef caller():\n    target()\n",
            }
        )
        graph = CallGraph.build(project)
        assert graph.callees_of("pkg.a.caller") == {"pkg.a.target"}
        (site,) = graph.sites_in("pkg.a.caller")
        assert (site.caller, site.callee) == ("pkg.a.caller", "pkg.a.target")
