"""Sampling distribution primitives."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload.distributions import (
    DiscreteChoice,
    Exponential,
    LogNormal,
    Mixture,
    Scaled,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLogNormal:
    def test_median_calibration(self, rng):
        samples = LogNormal(median=100.0, sigma=1.0).sample(rng, 50_000)
        assert np.median(samples) == pytest.approx(100.0, rel=0.05)

    def test_zero_sigma_is_constant(self, rng):
        samples = LogNormal(median=42.0, sigma=0.0).sample(rng, 10)
        np.testing.assert_allclose(samples, 42.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            LogNormal(median=0, sigma=1)
        with pytest.raises(ConfigError):
            LogNormal(median=1, sigma=-1)


class TestExponential:
    def test_mean(self, rng):
        samples = Exponential(mean=30.0).sample(rng, 50_000)
        assert samples.mean() == pytest.approx(30.0, rel=0.05)

    def test_rejects_bad_mean(self):
        with pytest.raises(ConfigError):
            Exponential(mean=0)


class TestMixture:
    def test_weights_normalized(self, rng):
        mixture = Mixture([(2.0, Exponential(10.0)), (2.0, Exponential(1000.0))])
        samples = mixture.sample(rng, 50_000)
        assert samples.mean() == pytest.approx(505.0, rel=0.1)

    def test_single_component(self, rng):
        mixture = Mixture([(1.0, Exponential(5.0))])
        assert mixture.sample(rng, 100).shape == (100,)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            Mixture([])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ConfigError):
            Mixture([(0.0, Exponential(1.0))])


class TestDiscreteChoice:
    def test_values_only_from_set(self, rng):
        choice = DiscreteChoice([1, 2, 4], [0.2, 0.3, 0.5])
        samples = choice.sample(rng, 1000)
        assert set(np.unique(samples)) <= {1.0, 2.0, 4.0}

    def test_mean(self):
        choice = DiscreteChoice([1, 3], [0.5, 0.5])
        assert choice.mean == pytest.approx(2.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigError):
            DiscreteChoice([1], [0.5, 0.5])

    def test_rejects_negative_weights(self):
        with pytest.raises(ConfigError):
            DiscreteChoice([1, 2], [-1.0, 2.0])


class TestScaled:
    def test_scaling(self, rng):
        scaled = Scaled(DiscreteChoice([1, 2], [0.5, 0.5]), factor=24)
        samples = scaled.sample(rng, 100)
        assert set(np.unique(samples)) <= {24.0, 48.0}

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigError):
            Scaled(Exponential(1.0), factor=0)
