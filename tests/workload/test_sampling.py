"""The paper's trace-construction pipeline."""

import pytest

from repro.errors import ConfigError
from repro.units import days, weeks
from repro.workload.sampling import (
    MAX_JOB_LENGTH,
    MIN_JOB_LENGTH,
    filter_lengths,
    resample_trace,
    week_long_trace,
    year_long_trace,
)
from repro.workload.synthetic import alibaba_like


@pytest.fixture(scope="module")
def raw():
    return alibaba_like(num_jobs=5_000, horizon=days(60), seed=4)


class TestFilterLengths:
    def test_paper_cutoffs(self, raw):
        filtered = filter_lengths(raw)
        lengths = filtered.lengths()
        assert lengths.min() >= MIN_JOB_LENGTH
        assert lengths.max() <= MAX_JOB_LENGTH

    def test_removes_jobs(self, raw):
        assert len(filter_lengths(raw)) < len(raw)

    def test_inverted_bounds(self, raw):
        with pytest.raises(ConfigError):
            filter_lengths(raw, min_length=100, max_length=10)


class TestResample:
    def test_counts_and_horizon(self, raw):
        sampled = resample_trace(raw, num_jobs=300, horizon=weeks(1), seed=1)
        assert len(sampled) == 300
        assert sampled.horizon == weeks(1)
        assert all(job.arrival < weeks(1) for job in sampled)

    def test_preserves_length_distribution(self, raw):
        filtered = filter_lengths(raw)
        sampled = resample_trace(filtered, num_jobs=4_000, horizon=weeks(1), seed=1)
        assert sampled.lengths().mean() == pytest.approx(
            filtered.lengths().mean(), rel=0.1
        )

    def test_cpu_cap_excludes(self, raw):
        sampled = resample_trace(raw, num_jobs=200, horizon=weeks(1), seed=1, max_cpus=4)
        assert sampled.cpu_counts().max() <= 4

    def test_deterministic(self, raw):
        a = resample_trace(raw, num_jobs=50, horizon=weeks(1), seed=9)
        b = resample_trace(raw, num_jobs=50, horizon=weeks(1), seed=9)
        assert [(j.arrival, j.length) for j in a] == [(j.arrival, j.length) for j in b]

    def test_rejects_impossible_cap(self, raw):
        with pytest.raises(ConfigError):
            resample_trace(raw, num_jobs=10, horizon=100, max_cpus=0)

    def test_rejects_bad_sizes(self, raw):
        with pytest.raises(ConfigError):
            resample_trace(raw, num_jobs=0, horizon=100)
        with pytest.raises(ConfigError):
            resample_trace(raw, num_jobs=10, horizon=0)


class TestPipelines:
    def test_year_long(self, raw):
        trace = year_long_trace(raw, num_jobs=1_000, horizon=days(30), seed=2)
        assert len(trace) == 1_000
        assert trace.lengths().max() <= MAX_JOB_LENGTH
        assert trace.name.endswith("-year")

    def test_week_long(self, raw):
        trace = week_long_trace(raw, num_jobs=200, seed=2)
        assert len(trace) == 200
        assert trace.horizon == weeks(1)
        assert trace.cpu_counts().max() <= 4
        assert trace.name.endswith("-week")
