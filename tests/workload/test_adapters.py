"""Public-dataset adapters, exercised on schema-faithful fixtures."""

import pytest

from repro.errors import TraceError
from repro.workload.adapters import (
    MUSTANG_CORES_PER_NODE,
    load_alibaba_pai,
    load_azure_vm,
    load_mustang,
)


@pytest.fixture
def azure_csv(tmp_path):
    path = tmp_path / "vmtable.csv"
    path.write_text(
        "vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,maxcpu,avgcpu,"
        "p95maxcpu,vmcategory,vmcorecountbucket,vmmemorybucket\n"
        "vm1,s1,d1,0,3600,90,40,80,Delay-insensitive,2,4\n"
        "vm2,s1,d1,600,90000,50,10,30,Interactive,>24,32\n"
        "vm3,s2,d2,1200,1200,10,5,8,Unknown,1,2\n"      # zero lifetime: skip
        "vm4,s2,d2,1800,5400,10,5,8,Unknown,4,8\n"
    )
    return str(path)


class TestAzure:
    def test_load(self, azure_csv):
        report = load_azure_vm(azure_csv)
        assert report.rows_read == 4
        assert report.rows_skipped == 1
        trace = report.trace
        assert len(trace) == 3
        first = trace[0]
        assert first.arrival == 0
        assert first.length == 60  # 3600 s
        assert first.cpus == 2

    def test_top_bucket_floored(self, azure_csv):
        trace = load_azure_vm(azure_csv).trace
        big = next(job for job in trace if job.cpus == 30)
        assert big.length == (90000 - 600) // 60

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError):
            load_azure_vm(str(path))

    def test_nothing_usable(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text(
            "vmid,vmcreated,vmdeleted,vmcorecountbucket\nvm1,10,10,2\n"
        )
        with pytest.raises(TraceError):
            load_azure_vm(str(path))


@pytest.fixture
def mustang_csv(tmp_path):
    path = tmp_path / "mustang.csv"
    path.write_text(
        "user_ID,group_ID,submit_time,start_time,end_time,wallclock_limit,"
        "job_status,node_count,tasks_requested\n"
        "u1,g1,2016-01-01 00:00:00,2016-01-01 00:05:00,2016-01-01 02:05:00,"
        "16:00:00,JOBEND,2,48\n"
        "u2,g1,2016-01-01 01:00:00,2016-01-01 01:10:00,2016-01-01 01:40:00,"
        "16:00:00,CANCELLED,1,24\n"
        "u3,g2,2016-01-01 02:00:00,2016-01-01 02:30:00,2016-01-01 10:30:00,"
        "16:00:00,JOBEND,8,192\n"
    )
    return str(path)


class TestMustang:
    def test_load_completed_only(self, mustang_csv):
        report = load_mustang(mustang_csv)
        assert report.rows_read == 3
        assert report.rows_skipped == 1  # the CANCELLED job
        trace = report.trace
        assert len(trace) == 2
        assert trace[0].cpus == 2 * MUSTANG_CORES_PER_NODE
        assert trace[0].length == 120
        # Arrivals are relative to the first submit.
        assert trace[0].arrival == 0
        assert trace[1].arrival == 120

    def test_keep_all_statuses(self, mustang_csv):
        report = load_mustang(mustang_csv, completed_only=False)
        assert len(report.trace) == 3

    def test_bad_timestamp_skipped(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "submit_time,start_time,end_time,node_count,job_status\n"
            "not-a-time,2016-01-01 00:00:00,2016-01-01 01:00:00,1,JOBEND\n"
            "2016-01-01 00:00:00,2016-01-01 00:05:00,2016-01-01 01:00:00,1,JOBEND\n"
        )
        report = load_mustang(str(path))
        assert report.rows_skipped == 1
        assert len(report.trace) == 1


@pytest.fixture
def pai_csv(tmp_path):
    path = tmp_path / "pai_task_table.csv"
    path.write_text(
        "job_name,task_name,inst_num,status,start_time,end_time,plan_cpu,"
        "plan_gpu,plan_mem\n"
        "j1,t1,1,Terminated,1000,4600,600,0,10\n"
        "j2,t1,4,Terminated,2000,9200,100,50,20\n"
        "j3,t1,1,Failed,3000,4000,100,0,10\n"
        "j4,t1,1,Terminated,0,4000,100,0,10\n"          # zero start: skip
    )
    return str(path)


class TestAlibabaPai:
    def test_load(self, pai_csv):
        report = load_alibaba_pai(pai_csv)
        assert report.rows_read == 4
        assert report.rows_skipped == 2
        trace = report.trace
        assert len(trace) == 2
        first = trace[0]
        assert first.cpus == 6      # plan_cpu 600 = 6 cores
        assert first.length == 60   # 3600 s
        second = trace[1]
        assert second.cpus == 4     # 4 instances x 1 core

    def test_feeds_sampling_pipeline(self, pai_csv):
        from repro.workload.sampling import resample_trace

        trace = load_alibaba_pai(pai_csv).trace
        sampled = resample_trace(trace, num_jobs=50, horizon=10_000, seed=1)
        assert len(sampled) == 50
