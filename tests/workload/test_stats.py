"""Workload statistics (Fig. 5 / Fig. 9 inputs)."""

import pytest

from repro.errors import TraceError
from repro.units import hours
from repro.workload.job import Job
from repro.workload.stats import (
    cpu_hours_by_length_bin,
    demand_cdf,
    length_cdf,
    short_job_compute_share,
    trace_summary,
)
from repro.workload.trace import WorkloadTrace


@pytest.fixture
def trace():
    jobs = [
        Job(job_id=0, arrival=0, length=3, cpus=1),      # very short
        Job(job_id=1, arrival=0, length=60, cpus=2),     # 1 h
        Job(job_id=2, arrival=0, length=hours(6), cpus=4),
        Job(job_id=3, arrival=0, length=hours(30), cpus=1),
    ]
    return WorkloadTrace(jobs, horizon=hours(40))


class TestCdfs:
    def test_length_cdf(self, trace):
        assert length_cdf(trace, [5, 60, hours(12), hours(40)]) == [
            0.25, 0.5, 0.75, 1.0,
        ]

    def test_demand_cdf(self, trace):
        assert demand_cdf(trace, [1, 2, 4]) == [0.5, 0.75, 1.0]


class TestBins:
    def test_cpu_hours_by_bin(self, trace):
        totals = cpu_hours_by_length_bin(trace, [60, hours(12)])
        # bin (0, 60]: job 0 (0.05 h) + job 1 (2 cpu-h); (60, 12h]: job 2
        # (24 cpu-h); (12h, inf): job 3 (30 cpu-h)
        assert totals[0] == pytest.approx(0.05 + 2.0)
        assert totals[1] == pytest.approx(24.0)
        assert totals[2] == pytest.approx(30.0)

    def test_bins_sum_to_total(self, trace):
        totals = cpu_hours_by_length_bin(trace, [60, hours(12)])
        assert sum(totals) == pytest.approx(trace.total_cpu_hours)

    def test_rejects_unsorted_edges(self, trace):
        with pytest.raises(TraceError):
            cpu_hours_by_length_bin(trace, [100, 10])


class TestShortJobShare:
    def test_shares(self, trace):
        job_share, compute_share = short_job_compute_share(trace, cutoff=5)
        assert job_share == 0.25
        assert compute_share < 0.01


class TestSummary:
    def test_keys_and_values(self, trace):
        summary = trace_summary(trace)
        assert summary["jobs"] == 4
        assert summary["mean_cpus"] == 2.0
        assert summary["max_length_hours"] == 30.0
        assert summary["total_cpu_hours"] == pytest.approx(trace.total_cpu_hours)
