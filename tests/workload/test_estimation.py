"""Online queue-average length estimation."""

import pytest

from repro.errors import ConfigError
from repro.units import days, hours
from repro.workload.estimation import OnlineLengthEstimator
from repro.workload.job import default_queue_set


@pytest.fixture
def estimator():
    return OnlineLengthEstimator(default_queue_set(), alpha=0.1, warmup=3)


class TestOnlineLengthEstimator:
    def test_cold_start_at_queue_bound(self, estimator):
        assert estimator.estimate("short") == float(hours(2))
        assert estimator.estimate("long") == float(days(3))

    def test_warmup_running_mean(self, estimator):
        estimator.observe("short", 30)
        assert estimator.estimate("short") == 30.0
        estimator.observe("short", 60)
        assert estimator.estimate("short") == 45.0

    def test_ewma_after_warmup(self, estimator):
        for _ in range(3):
            estimator.observe("short", 60)
        estimator.observe("short", 160)  # 4th: EWMA with alpha 0.1
        assert estimator.estimate("short") == pytest.approx(0.9 * 60 + 0.1 * 160)

    def test_converges_to_true_mean(self):
        estimator = OnlineLengthEstimator(default_queue_set(), alpha=0.05)
        import numpy as np

        rng = np.random.default_rng(0)
        for length in rng.exponential(90, size=2_000):
            estimator.observe("short", max(1.0, length))
        assert estimator.estimate("short") == pytest.approx(90, rel=0.3)

    def test_queues_independent(self, estimator):
        estimator.observe("short", 10)
        assert estimator.estimate("long") == float(days(3))

    def test_observation_count(self, estimator):
        estimator.observe("short", 10)
        estimator.observe("short", 10)
        assert estimator.observations("short") == 2
        assert estimator.observations("long") == 0

    def test_validation(self, estimator):
        with pytest.raises(ConfigError):
            estimator.observe("nope", 10)
        with pytest.raises(ConfigError):
            estimator.observe("short", 0)
        with pytest.raises(ConfigError):
            estimator.estimate("nope")
        with pytest.raises(ConfigError):
            OnlineLengthEstimator(default_queue_set(), alpha=0.0)
        with pytest.raises(ConfigError):
            OnlineLengthEstimator(default_queue_set(), warmup=-1)


class TestEndToEnd:
    def test_online_estimation_approaches_oracle(self):
        from repro.carbon.regions import region_trace
        from repro.simulator.simulation import run_simulation
        from repro.workload.sampling import week_long_trace
        from repro.workload.synthetic import alibaba_like

        workload = week_long_trace(
            alibaba_like(6_000, horizon=days(40), seed=6), num_jobs=300
        )
        carbon = region_trace("SA-AU")
        baseline = run_simulation(workload, carbon, "nowait")
        oracle = run_simulation(workload, carbon, "carbon-time")
        online = run_simulation(
            workload, carbon, "carbon-time", online_estimation=True
        )
        oracle_saving = oracle.carbon_savings_vs(baseline)
        online_saving = online.carbon_savings_vs(baseline)
        # Learned averages recover most of the oracle-average savings.
        assert online_saving > 0.6 * oracle_saving

    def test_online_estimation_deterministic(self):
        from repro.carbon.regions import region_trace
        from repro.simulator.simulation import run_simulation
        from repro.workload.sampling import week_long_trace
        from repro.workload.synthetic import alibaba_like

        workload = week_long_trace(
            alibaba_like(4_000, horizon=days(30), seed=7), num_jobs=100
        )
        carbon = region_trace("CA-US")
        a = run_simulation(workload, carbon, "lowest-window", online_estimation=True)
        b = run_simulation(workload, carbon, "lowest-window", online_estimation=True)
        assert a.total_carbon_g == b.total_carbon_g
