"""Synthetic workload families: calibration to the paper's trace facts."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.units import days, hours
from repro.workload.synthetic import (
    TRACE_FAMILIES,
    alibaba_like,
    azure_like,
    mustang_like,
    poisson_exponential,
)


class TestCommonProperties:
    @pytest.mark.parametrize("family", sorted(TRACE_FAMILIES))
    def test_deterministic(self, family):
        a = TRACE_FAMILIES[family](num_jobs=200, horizon=days(7), seed=5)
        b = TRACE_FAMILIES[family](num_jobs=200, horizon=days(7), seed=5)
        assert [(j.arrival, j.length, j.cpus) for j in a] == [
            (j.arrival, j.length, j.cpus) for j in b
        ]

    @pytest.mark.parametrize("family", sorted(TRACE_FAMILIES))
    def test_job_count_and_bounds(self, family):
        trace = TRACE_FAMILIES[family](num_jobs=500, horizon=days(7), seed=1)
        assert len(trace) == 500
        assert all(job.arrival < days(7) for job in trace)
        assert all(job.length >= 1 for job in trace)
        assert all(job.cpus >= 1 for job in trace)

    def test_families_differ(self):
        a = alibaba_like(num_jobs=300, horizon=days(7), seed=1)
        b = azure_like(num_jobs=300, horizon=days(7), seed=1)
        assert a.lengths().mean() != b.lengths().mean()

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            alibaba_like(num_jobs=0)
        with pytest.raises(ConfigError):
            alibaba_like(num_jobs=10, horizon=0)


class TestAlibabaShape:
    def test_short_job_mass(self):
        """Paper: 38% of Alibaba jobs are under 5 minutes."""
        trace = alibaba_like(num_jobs=20_000, horizon=days(60), seed=2)
        share = float((trace.lengths() <= 5).mean())
        assert 0.25 <= share <= 0.50

    def test_short_jobs_contribute_little_compute(self):
        """Paper: those jobs are ~0.36% of compute cycles."""
        trace = alibaba_like(num_jobs=20_000, horizon=days(60), seed=2)
        lengths = trace.lengths().astype(float)
        work = lengths * trace.cpu_counts()
        assert work[lengths <= 5].sum() / work.sum() < 0.02

    def test_cpu_cap(self):
        trace = alibaba_like(num_jobs=2_000, horizon=days(30), seed=3, max_cpus=4)
        assert trace.cpu_counts().max() <= 4


class TestMustangShape:
    def test_sixteen_hour_cap(self):
        """Paper: the Mustang trace's maximum job length is 16 hours."""
        trace = mustang_like(num_jobs=5_000, horizon=days(60), seed=2)
        assert trace.lengths().max() <= hours(16)

    def test_node_granularity(self):
        """Mustang allocates whole 24-core nodes."""
        trace = mustang_like(num_jobs=2_000, horizon=days(30), seed=2)
        assert np.all(trace.cpu_counts() % 24 == 0)

    def test_lumpier_than_azure(self):
        """Paper: demand CoV Mustang ~0.8 vs Azure ~0.3."""
        mustang = mustang_like(num_jobs=5_000, horizon=days(60), seed=2)
        azure = azure_like(num_jobs=5_000, horizon=days(60), seed=2)
        assert mustang.demand_cov() > azure.demand_cov()


class TestAzureShape:
    def test_long_tail(self):
        """Azure jobs span diurnal CI cycles (mean length >> Alibaba's)."""
        azure = azure_like(num_jobs=5_000, horizon=days(60), seed=2)
        alibaba = alibaba_like(num_jobs=5_000, horizon=days(60), seed=2)
        assert azure.lengths().mean() > alibaba.lengths().mean()
        assert azure.lengths().max() > hours(48)


class TestDiurnalArrivals:
    def test_mass_concentrates_at_peak(self):
        import numpy as np
        from repro.workload.synthetic import diurnal_arrivals

        rng = np.random.default_rng(0)
        arrivals = diurnal_arrivals(rng, 20_000, days(30), peak_hour=14.0,
                                    amplitude=0.8)
        hour_of_day = (arrivals / 60.0) % 24
        near_peak = ((hour_of_day > 10) & (hour_of_day < 18)).mean()
        assert near_peak > 0.45  # uniform would give ~0.33

    def test_zero_amplitude_is_uniform(self):
        import numpy as np
        from repro.workload.synthetic import diurnal_arrivals

        rng = np.random.default_rng(0)
        arrivals = diurnal_arrivals(rng, 5_000, days(10), amplitude=0.0)
        hour_of_day = (arrivals / 60.0) % 24
        assert abs(((hour_of_day > 10) & (hour_of_day < 18)).mean() - 1 / 3) < 0.05

    def test_amplitude_validated(self):
        import numpy as np
        from repro.workload.synthetic import diurnal_arrivals

        with pytest.raises(ConfigError):
            diurnal_arrivals(np.random.default_rng(0), 10, 1000, amplitude=1.5)

    def test_generator_knob(self):
        trace = alibaba_like(
            num_jobs=5_000, horizon=days(30), seed=1, arrival_peak_hour=14.0
        )
        import numpy as np

        hour_of_day = (np.array([j.arrival for j in trace]) / 60.0) % 24
        assert ((hour_of_day > 10) & (hour_of_day < 18)).mean() > 0.4

    def test_sampling_pipeline_knob(self):
        from repro.workload.sampling import week_long_trace

        raw = alibaba_like(num_jobs=5_000, horizon=days(30), seed=1)
        trace = week_long_trace(raw, num_jobs=2_000, arrival_peak_hour=14.0)
        import numpy as np

        hour_of_day = (np.array([j.arrival for j in trace]) / 60.0) % 24
        assert ((hour_of_day > 10) & (hour_of_day < 18)).mean() > 0.4


class TestPoissonExponential:
    def test_motivating_workload_demand(self):
        """Paper Section 3: ~5 CPUs of average demand."""
        trace = poisson_exponential(seed=3, horizon=days(30))
        assert trace.mean_demand == pytest.approx(5.0, rel=0.25)

    def test_single_cpu_jobs(self):
        trace = poisson_exponential(seed=1)
        assert set(np.unique(trace.cpu_counts())) == {1}

    def test_rejects_bad_means(self):
        with pytest.raises(ConfigError):
            poisson_exponential(mean_interarrival=0)

    def test_too_short_horizon(self):
        with pytest.raises(ConfigError):
            poisson_exponential(horizon=1, mean_interarrival=10_000, seed=123)
