"""Job model and queue routing."""

import pytest

from repro.errors import ConfigError, TraceError
from repro.units import days, hours
from repro.workload.job import DEFAULT_QUEUES, Job, JobQueue, QueueSet, default_queue_set


class TestJob:
    def test_cpu_minutes(self):
        assert Job(job_id=0, arrival=0, length=90, cpus=2).cpu_minutes == 180.0

    def test_rejects_negative_arrival(self):
        with pytest.raises(TraceError):
            Job(job_id=0, arrival=-1, length=10)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(TraceError):
            Job(job_id=0, arrival=0, length=0)

    def test_rejects_nonpositive_cpus(self):
        with pytest.raises(TraceError):
            Job(job_id=0, arrival=0, length=10, cpus=0)

    def test_with_queue_is_copy(self):
        job = Job(job_id=0, arrival=0, length=10)
        labelled = job.with_queue("short")
        assert labelled.queue == "short"
        assert job.queue == ""

    def test_frozen(self):
        job = Job(job_id=0, arrival=0, length=10)
        with pytest.raises(AttributeError):
            job.length = 20


class TestJobQueue:
    def test_length_estimate_prefers_average(self):
        queue = JobQueue(name="q", max_length=120, max_wait=60, avg_length=45.0)
        assert queue.length_estimate() == 45.0

    def test_length_estimate_falls_back_to_bound(self):
        queue = JobQueue(name="q", max_length=120, max_wait=60)
        assert queue.length_estimate() == 120.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            JobQueue(name="q", max_length=0, max_wait=60)
        with pytest.raises(ConfigError):
            JobQueue(name="q", max_length=60, max_wait=-1)


class TestQueueSet:
    def test_sorted_by_bound(self):
        queues = QueueSet(
            (
                JobQueue(name="long", max_length=1000, max_wait=0),
                JobQueue(name="short", max_length=10, max_wait=0),
            )
        )
        assert [q.name for q in queues] == ["short", "long"]

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            QueueSet(())

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigError):
            QueueSet(
                (
                    JobQueue(name="q", max_length=10, max_wait=0),
                    JobQueue(name="q", max_length=20, max_wait=0),
                )
            )

    def test_routing_smallest_fitting_queue(self):
        queues = default_queue_set()
        assert queues.queue_for_length(30).name == "short"
        assert queues.queue_for_length(hours(2)).name == "short"
        assert queues.queue_for_length(hours(2) + 1).name == "long"

    def test_routing_overflow(self):
        with pytest.raises(ConfigError):
            default_queue_set().queue_for_length(days(30))

    def test_getitem(self):
        assert DEFAULT_QUEUES["short"].max_wait == hours(6)
        with pytest.raises(KeyError):
            DEFAULT_QUEUES["missing"]

    def test_max_wait(self):
        assert DEFAULT_QUEUES.max_wait == hours(24)

    def test_assign_labels_jobs(self):
        jobs = [Job(job_id=0, arrival=0, length=30), Job(job_id=1, arrival=0, length=hours(5))]
        labelled = DEFAULT_QUEUES.assign(jobs)
        assert [job.queue for job in labelled] == ["short", "long"]

    def test_with_averages(self):
        jobs = [
            Job(job_id=0, arrival=0, length=30),
            Job(job_id=1, arrival=0, length=90),
            Job(job_id=2, arrival=0, length=hours(5)),
        ]
        queues = default_queue_set().with_averages(jobs)
        assert queues["short"].avg_length == pytest.approx(60.0)
        assert queues["long"].avg_length == pytest.approx(hours(5))

    def test_with_averages_keeps_empty_queue_estimate(self):
        jobs = [Job(job_id=0, arrival=0, length=30)]
        queues = default_queue_set().with_averages(jobs)
        assert queues["long"].avg_length is None
        assert queues["long"].length_estimate() == float(days(3))


class TestDefaultQueueSet:
    def test_paper_defaults(self):
        queues = default_queue_set()
        assert queues["short"].max_length == hours(2)
        assert queues["short"].max_wait == hours(6)
        assert queues["long"].max_length == days(3)
        assert queues["long"].max_wait == hours(24)

    def test_custom_waits(self):
        queues = default_queue_set(short_wait=hours(3), long_wait=hours(48))
        assert queues["short"].max_wait == hours(3)
        assert queues["long"].max_wait == hours(48)
