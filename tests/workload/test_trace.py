"""WorkloadTrace container and analytics."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.units import hours
from repro.workload.job import Job, default_queue_set
from repro.workload.trace import WorkloadTrace


def jobs3():
    return [
        Job(job_id=0, arrival=10, length=60, cpus=1),
        Job(job_id=1, arrival=0, length=30, cpus=2),
        Job(job_id=2, arrival=5, length=120, cpus=1),
    ]


class TestConstruction:
    def test_sorted_by_arrival(self):
        trace = WorkloadTrace(jobs3())
        assert [job.job_id for job in trace] == [1, 2, 0]

    def test_accepts_empty(self):
        # A zero-job trace is legal (an idle cluster); horizon infers to 0.
        trace = WorkloadTrace([])
        assert len(trace) == 0
        assert trace.horizon == 0

    def test_rejects_duplicate_ids(self):
        with pytest.raises(TraceError):
            WorkloadTrace([Job(job_id=0, arrival=0, length=1), Job(job_id=0, arrival=1, length=1)])

    def test_horizon_inferred(self):
        trace = WorkloadTrace(jobs3())
        assert trace.horizon == 5 + 120

    def test_horizon_before_last_arrival_rejected(self):
        with pytest.raises(TraceError):
            WorkloadTrace(jobs3(), horizon=5)

    def test_len_and_getitem(self):
        trace = WorkloadTrace(jobs3())
        assert len(trace) == 3
        assert trace[0].job_id == 1


class TestAggregates:
    def test_total_cpu_minutes(self):
        trace = WorkloadTrace(jobs3())
        assert trace.total_cpu_minutes == 60 + 60 + 120

    def test_mean_demand(self):
        trace = WorkloadTrace(jobs3(), horizon=120)
        assert trace.mean_demand == pytest.approx(240 / 120)

    def test_lengths_and_cpus_arrays(self):
        trace = WorkloadTrace(jobs3())
        np.testing.assert_array_equal(np.sort(trace.lengths()), [30, 60, 120])
        assert trace.cpu_counts().sum() == 4


class TestDemandProfile:
    def test_simple_profile(self):
        jobs = [
            Job(job_id=0, arrival=0, length=10, cpus=2),
            Job(job_id=1, arrival=5, length=10, cpus=1),
        ]
        profile = WorkloadTrace(jobs, horizon=20).demand_profile()
        assert profile[0] == 2
        assert profile[5] == 3
        assert profile[12] == 1
        assert profile[15] == 0

    def test_clips_at_horizon(self):
        jobs = [Job(job_id=0, arrival=0, length=100, cpus=1)]
        profile = WorkloadTrace(jobs, horizon=10).demand_profile(horizon=10)
        assert profile.size == 10
        assert profile[-1] == 1

    def test_demand_cov_constant_load(self):
        jobs = [Job(job_id=0, arrival=0, length=100, cpus=3)]
        trace = WorkloadTrace(jobs, horizon=100)
        assert trace.demand_cov() == pytest.approx(0.0)


class TestTransformations:
    def test_filtered(self):
        trace = WorkloadTrace(jobs3())
        short = trace.filtered(lambda job: job.length <= 60)
        assert len(short) == 2

    def test_filtered_all_removed(self):
        trace = WorkloadTrace(jobs3())
        with pytest.raises(TraceError):
            trace.filtered(lambda job: False)

    def test_renumbered(self):
        trace = WorkloadTrace(jobs3()).renumbered()
        assert [job.job_id for job in trace] == [0, 1, 2]

    def test_with_queues(self):
        trace = WorkloadTrace(
            [Job(job_id=0, arrival=0, length=30), Job(job_id=1, arrival=0, length=hours(10))]
        )
        labelled = trace.with_queues(default_queue_set())
        assert [job.queue for job in labelled] == ["short", "long"]


class TestPersistence:
    def test_csv_roundtrip(self, tmp_path):
        trace = WorkloadTrace(jobs3(), name="rt").with_queues(default_queue_set())
        path = str(tmp_path / "jobs.csv")
        trace.to_csv(path)
        loaded = WorkloadTrace.from_csv(path, name="rt")
        assert len(loaded) == len(trace)
        for a, b in zip(loaded, trace):
            assert (a.job_id, a.arrival, a.length, a.cpus, a.queue) == (
                b.job_id, b.arrival, b.length, b.cpus, b.queue,
            )

    def test_csv_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(TraceError):
            WorkloadTrace.from_csv(str(path))

    def test_from_arrays(self):
        trace = WorkloadTrace.from_arrays([0, 10], [60, 30], [1, 2], name="arr")
        assert len(trace) == 2
        assert trace[1].cpus == 2

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(TraceError):
            WorkloadTrace.from_arrays([0], [60, 30], [1, 2])
