"""Unit-conversion helpers."""

import pytest

from repro import units


class TestConversions:
    def test_hours_to_minutes(self):
        assert units.hours(2) == 120

    def test_fractional_hours_round(self):
        assert units.hours(1.5) == 90
        assert units.hours(0.251) == 15

    def test_days(self):
        assert units.days(3) == 3 * 24 * 60

    def test_weeks(self):
        assert units.weeks(1) == 7 * 24 * 60

    def test_to_hours_roundtrip(self):
        assert units.to_hours(units.hours(7)) == 7.0

    def test_to_days_roundtrip(self):
        assert units.to_days(units.days(2)) == 2.0

    def test_grams_to_kg(self):
        assert units.grams_to_kg(2500.0) == 2.5

    def test_year_constants_consistent(self):
        assert units.MINUTES_PER_YEAR == units.HOURS_PER_YEAR * 60
        assert units.MINUTES_PER_DAY == 1440


class TestFormatMinutes:
    @pytest.mark.parametrize(
        "minutes,expected",
        [
            (0, "0m"),
            (59, "59m"),
            (60, "1h"),
            (90, "1h30m"),
            (1440, "1d"),
            (1500, "1d1h"),
            (2 * 1440 + 61, "2d1h1m"),
        ],
    )
    def test_rendering(self, minutes, expected):
        assert units.format_minutes(minutes) == expected

    def test_negative(self):
        assert units.format_minutes(-90) == "-1h30m"

    def test_rounds_floats(self):
        assert units.format_minutes(59.6) == "1h"
