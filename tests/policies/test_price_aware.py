"""Electricity-price-aware policies (paper Section 7)."""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.price import ElectricityPriceTrace
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import SchedulingError
from repro.policies.base import SchedulingContext
from repro.policies.price_aware import PriceAware, WeightedCarbonPrice
from repro.units import hours
from repro.workload.job import Job, JobQueue, QueueSet


def make_ctx(ci_hourly, price_hourly=None):
    trace = CarbonIntensityTrace(np.asarray(ci_hourly, dtype=float))
    queues = QueueSet(
        (JobQueue(name="q", max_length=hours(72), max_wait=hours(6), avg_length=60.0),)
    )
    price_forecaster = None
    if price_hourly is not None:
        price_forecaster = PerfectForecaster(
            ElectricityPriceTrace(np.asarray(price_hourly, dtype=float))
        )
    return SchedulingContext(
        forecaster=PerfectForecaster(trace),
        queues=queues,
        price_forecaster=price_forecaster,
    )


def job(arrival=0):
    return Job(job_id=0, arrival=arrival, length=60, cpus=1, queue="q")


FLAT_CI = [100.0] * 10
# Price valley at hour 2; CI valley at hour 4.
PRICES = [90, 80, 5, 70, 60, 65, 70, 90, 90, 90]
CI = [100, 95, 90, 85, 5, 80, 85, 100, 100, 100]


class TestPriceAware:
    def test_picks_cheapest_price_window(self):
        ctx = make_ctx(FLAT_CI, PRICES)
        decision = PriceAware().decide(job(), ctx)
        assert decision.start_time == hours(2)

    def test_requires_price_forecaster(self):
        ctx = make_ctx(FLAT_CI)
        with pytest.raises(SchedulingError):
            PriceAware().decide(job(), ctx)

    def test_ignores_carbon(self):
        ctx = make_ctx(CI, PRICES)
        decision = PriceAware().decide(job(), ctx)
        assert decision.start_time == hours(2)  # price valley, not CI's


class TestWeightedCarbonPrice:
    def test_weight_one_follows_carbon(self):
        ctx = make_ctx(CI, PRICES)
        decision = WeightedCarbonPrice(1.0).decide(job(), ctx)
        assert decision.start_time == hours(4)

    def test_weight_zero_follows_price(self):
        ctx = make_ctx(CI, PRICES)
        decision = WeightedCarbonPrice(0.0).decide(job(), ctx)
        assert decision.start_time == hours(2)

    def test_intermediate_weight_picks_one_valley(self):
        ctx = make_ctx(CI, PRICES)
        decision = WeightedCarbonPrice(0.5).decide(job(), ctx)
        assert decision.start_time in (hours(2), hours(4))

    def test_aligned_valleys_unanimous(self):
        # When carbon and price valleys coincide, every weight agrees
        # (the paper's "first day" case).
        aligned_prices = [90, 80, 70, 60, 5, 65, 70, 90, 90, 90]
        ctx = make_ctx(CI, aligned_prices)
        for weight in (0.0, 0.3, 0.7, 1.0):
            assert WeightedCarbonPrice(weight).decide(job(), ctx).start_time == hours(4)

    def test_weight_validated(self):
        with pytest.raises(SchedulingError):
            WeightedCarbonPrice(1.5)

    def test_name_includes_weight(self):
        assert "0.25" in WeightedCarbonPrice(0.25).name


class TestEndToEnd:
    def test_run_simulation_plumbs_price_trace(self):
        from repro.analysis.metrics import energy_cost_usd
        from repro.carbon.price import correlated_price_trace
        from repro.carbon.regions import region_trace
        from repro.simulator.simulation import run_simulation
        from repro.units import days
        from repro.workload.sampling import week_long_trace
        from repro.workload.synthetic import alibaba_like

        workload = week_long_trace(
            alibaba_like(4_000, horizon=days(30), seed=9), num_jobs=120
        )
        carbon = region_trace("TX-US")
        price = correlated_price_trace(carbon, seed=1)
        cost_driven = run_simulation(workload, carbon, PriceAware(), price_trace=price)
        carbon_driven = run_simulation(
            workload, carbon, "lowest-window", price_trace=price
        )
        assert energy_cost_usd(cost_driven, price) < energy_cost_usd(
            carbon_driven, price
        )
