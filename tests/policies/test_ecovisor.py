"""Ecovisor: greedy-threshold suspend-resume."""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.policies.base import SchedulingContext, validate_decision
from repro.policies.ecovisor import Ecovisor
from repro.units import hours
from repro.workload.job import Job, JobQueue, QueueSet


def make_ctx(hourly, max_wait=hours(6)):
    trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
    queues = QueueSet((JobQueue(name="q", max_length=hours(72), max_wait=max_wait),))
    return SchedulingContext(forecaster=PerfectForecaster(trace), queues=queues)


def job(arrival=0, length=120):
    return Job(job_id=0, arrival=arrival, length=length, cpus=1, queue="q")


class TestEcovisor:
    def test_runs_immediately_in_cheap_slot(self):
        # Arrival hour is the cheapest of the day: below the 30th pct.
        hourly = [10.0] + [100.0] * 30
        decision = Ecovisor().decide(job(length=60), make_ctx(hourly))
        assert decision.segments == ((0, 60),)

    def test_pauses_through_expensive_slots(self):
        # Hours 0-1 expensive, hours 2-9 cheap (8 of 24 hours, so the 30th
        # percentile of the look-ahead is 10): run only in the valley.
        hourly = [100, 100] + [10] * 8 + [100] * 20
        decision = Ecovisor().decide(job(length=120), make_ctx(hourly))
        assert decision.segments == ((hours(2), hours(4)),)

    def test_forced_run_after_wait_budget(self):
        # The valley (threshold-setting 30% of hours) lies beyond the
        # 3-hour waiting budget: the job must force-run at exactly W.
        hourly = [200.0] * 10 + [50.0] * 8 + [200.0] * 12
        ctx = make_ctx(hourly, max_wait=hours(3))
        decision = Ecovisor().decide(job(length=60), ctx)
        assert decision.segments == ((hours(3), hours(4)),)

    def test_waiting_never_exceeds_budget(self):
        rng = np.random.default_rng(4)
        ctx = make_ctx(rng.uniform(20, 500, size=80), max_wait=hours(6))
        for arrival in (0, 25, hours(3) + 7):
            for length in (45, 90, 240):
                the_job = job(arrival=arrival, length=length)
                decision = Ecovisor().decide(the_job, ctx)
                validate_decision(the_job, decision, ctx)
                finish = decision.segments[-1][1]
                paused = finish - arrival - length
                assert 0 <= paused <= hours(6)

    def test_mid_hour_arrival(self):
        hourly = [10.0] + [100.0] * 30
        decision = Ecovisor().decide(job(arrival=30, length=20), make_ctx(hourly))
        assert decision.segments == ((30, 50),)

    def test_custom_threshold_percentile(self):
        # With a 100th-percentile threshold everything qualifies: runs
        # now even though the first hour is the most expensive.
        hourly = [400, 10, 10, 10] + [10] * 24
        policy = Ecovisor(threshold_percentile=100.0)
        decision = policy.decide(job(length=60), make_ctx(hourly))
        assert decision.segments == ((0, 60),)

    def test_zero_wait_budget_runs_immediately(self):
        hourly = [500, 10] + [100] * 24
        ctx = make_ctx(hourly, max_wait=0)
        decision = Ecovisor().decide(job(length=60), ctx)
        assert decision.segments == ((0, 60),)

    def test_threshold_uses_24h_lookahead(self):
        # A deep valley 30 h away must not drag the threshold down.
        hourly = [50.0] * 24 + [50.0] * 6 + [1.0] * 4 + [50.0] * 10
        decision = Ecovisor().decide(job(length=60), make_ctx(hourly))
        # All first-24h values are 50 -> threshold 50 -> run immediately.
        assert decision.segments[0][0] == 0
