"""Wait Awhile: suspend-resume in the lowest-carbon slots."""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import SchedulingError
from repro.policies.base import SchedulingContext, validate_decision
from repro.policies.wait_awhile import WaitAwhile, merge_segments
from repro.units import hours
from repro.workload.job import Job, JobQueue, QueueSet


def make_ctx(hourly, max_wait=hours(6)):
    trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
    queues = QueueSet(
        (JobQueue(name="q", max_length=hours(72), max_wait=max_wait),)
    )
    return SchedulingContext(forecaster=PerfectForecaster(trace), queues=queues)


def job(arrival=0, length=120):
    return Job(job_id=0, arrival=arrival, length=length, cpus=1, queue="q")


class TestMergeSegments:
    def test_merges_touching(self):
        assert merge_segments([(0, 10), (10, 20)]) == ((0, 20),)

    def test_keeps_gaps(self):
        assert merge_segments([(0, 10), (20, 30)]) == ((0, 10), (20, 30))

    def test_sorts_first(self):
        assert merge_segments([(20, 30), (0, 10)]) == ((0, 10), (20, 30))

    def test_rejects_overlap(self):
        with pytest.raises(SchedulingError):
            merge_segments([(0, 15), (10, 20)])

    def test_rejects_empty(self):
        with pytest.raises(SchedulingError):
            merge_segments([])


class TestWaitAwhile:
    def test_contiguous_when_no_slack(self):
        ctx = make_ctx([100.0] * 4, max_wait=0)
        decision = WaitAwhile().decide(job(length=120), ctx)
        assert decision.segments == ((0, 120),)

    def test_picks_cheapest_slots(self):
        # 2 h job, W = 6 h, deadline hour 8. Cheapest slots: hours 3 and 6.
        ctx = make_ctx([100, 90, 80, 10, 70, 60, 20, 100, 100, 100])
        decision = WaitAwhile().decide(job(length=120), ctx)
        assert decision.segments == ((hours(3), hours(4)), (hours(6), hours(7)))

    def test_contiguous_valley_merges(self):
        ctx = make_ctx([100, 90, 10, 10, 70, 60, 90, 100, 100, 100])
        decision = WaitAwhile().decide(job(length=120), ctx)
        assert decision.segments == ((hours(2), hours(4)),)

    def test_partial_slot_aligned_to_chosen_neighbour(self):
        # 90-minute job; cheapest hour 3 (10), then hour 4 (20): the
        # 30-minute remainder in hour 4 butts against hour 3's end.
        ctx = make_ctx([100, 90, 80, 10, 20, 60, 70, 100, 100, 100])
        decision = WaitAwhile().decide(job(length=90), ctx)
        assert decision.segments == ((hours(3), hours(4) + 30),)

    def test_partial_slot_before_chosen_neighbour(self):
        # Cheapest hour 3 (10) then hour 2 (15): the remainder in hour 2
        # is end-aligned so it touches hour 3.
        ctx = make_ctx([100, 90, 15, 10, 70, 60, 70, 100, 100, 100])
        decision = WaitAwhile().decide(job(length=90), ctx)
        assert decision.segments == ((hours(3) - 30, hours(4)),)

    def test_total_duration_exact(self):
        rng = np.random.default_rng(1)
        ctx = make_ctx(rng.uniform(20, 500, size=100))
        for length in (7, 60, 95, 180, 600):
            decision = WaitAwhile().decide(job(length=length), ctx)
            total = sum(end - start for start, end in decision.segments)
            assert total == length

    def test_meets_deadline(self):
        rng = np.random.default_rng(2)
        ctx = make_ctx(rng.uniform(20, 500, size=100), max_wait=hours(6))
        for arrival in (0, 45, hours(5) + 13):
            for length in (30, 120, 300):
                the_job = job(arrival=arrival, length=length)
                decision = WaitAwhile().decide(the_job, ctx)
                validate_decision(the_job, decision, ctx)
                assert decision.segments[-1][1] <= arrival + length + hours(6)

    def test_mid_hour_arrival_uses_partial_first_slot(self):
        # Arrival at minute 30 of the cheapest hour: the available part
        # of that hour should be used.
        ctx = make_ctx([10, 100, 100, 100, 100, 100, 100, 100])
        decision = WaitAwhile().decide(job(arrival=30, length=60), ctx)
        assert decision.segments[0][0] == 30

    def test_beats_or_matches_lowest_window(self):
        """With exact knowledge + suspension, Wait Awhile's planned carbon
        must be <= any contiguous plan of the same job."""
        rng = np.random.default_rng(5)
        hourly = rng.uniform(20, 500, size=60)
        ctx = make_ctx(hourly)
        trace = ctx.forecaster.trace
        the_job = job(length=150)
        decision = WaitAwhile().decide(the_job, ctx)
        planned = sum(
            trace.interval_carbon(start, end) for start, end in decision.segments
        )
        best_contiguous = min(
            trace.interval_carbon(s, s + 150)
            for s in range(0, hours(6), 10)
        )
        assert planned <= best_contiguous + 1e-9
