"""Policy registry and Table 1 metadata."""

import pytest

from repro.errors import ConfigError
from repro.policies.carbon_time import CarbonTime
from repro.policies.registry import TIMING_POLICIES, make_policy, policy_table
from repro.policies.wrappers import ResFirst, SpotFirst, SpotRes
from repro.units import hours


class TestMakePolicy:
    @pytest.mark.parametrize("spec", sorted(TIMING_POLICIES))
    def test_all_timing_specs(self, spec):
        assert make_policy(spec).name

    def test_wrapped_specs(self):
        assert isinstance(make_policy("res-first:carbon-time"), ResFirst)
        assert isinstance(make_policy("spot-first:lowest-window"), SpotFirst)
        assert isinstance(make_policy("spot-res:carbon-time"), SpotRes)

    def test_wrapper_kwargs_forwarded(self):
        policy = make_policy("spot-first:carbon-time", spot_max_length=hours(12))
        assert policy.spot_max_length == hours(12)

    def test_case_and_whitespace_insensitive(self):
        assert isinstance(make_policy("  Carbon-Time "), CarbonTime)

    def test_unknown_timing(self):
        with pytest.raises(ConfigError):
            make_policy("frobnicate")

    def test_unknown_wrapper(self):
        with pytest.raises(ConfigError):
            make_policy("banana:carbon-time")

    def test_kwargs_without_wrapper_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("carbon-time", spot_max_length=10)


class TestPolicyTable:
    def test_matches_paper_table1(self):
        rows = {row["policy"]: row for row in policy_table()}
        assert rows["NoWait"]["carbon_aware"] == "-"
        assert rows["Wait Awhile"]["job_length"] == "Yes"
        assert rows["Ecovisor"]["job_length"] == "-"
        assert rows["Lowest-Window"]["job_length"] == "J_avg"
        assert rows["Carbon-Time"]["performance_aware"] == "Yes"
        # Carbon-Time is the only performance-aware policy in Table 1.
        performance_aware = [
            name for name, row in rows.items() if row["performance_aware"] == "Yes"
        ]
        assert performance_aware == ["Carbon-Time"]

    def test_seven_rows(self):
        assert len(policy_table()) == 7
