"""Timing-policy semantics on hand-constructed carbon traces.

The traces are piecewise-constant with known optima, so every policy's
choice can be asserted exactly.
"""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.policies.base import SchedulingContext, validate_decision
from repro.policies.carbon_agnostic import AllWaitThreshold, NoWait
from repro.policies.carbon_time import CarbonTime
from repro.policies.lowest_slot import LowestSlot
from repro.policies.lowest_window import LowestWindow
from repro.units import hours
from repro.workload.job import Job, JobQueue, QueueSet


def make_ctx(hourly, granularity=1, avg_short=60.0, avg_long=240.0):
    trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
    queues = QueueSet(
        (
            JobQueue(name="short", max_length=hours(2), max_wait=hours(6),
                     avg_length=avg_short),
            JobQueue(name="long", max_length=hours(72), max_wait=hours(24),
                     avg_length=avg_long),
        )
    )
    return SchedulingContext(
        forecaster=PerfectForecaster(trace), queues=queues, granularity=granularity
    )


def short_job(arrival=0, length=60):
    return Job(job_id=0, arrival=arrival, length=length, cpus=1, queue="short")


class TestNoWait:
    def test_starts_at_arrival(self):
        ctx = make_ctx([100.0] * 48)
        decision = NoWait().decide(short_job(arrival=123), ctx)
        assert decision.start_time == 123
        assert decision.segments is None
        assert not decision.reserved_pickup


class TestAllWaitThreshold:
    def test_waits_full_w_with_reserved_pickup(self):
        ctx = make_ctx([100.0] * 48)
        decision = AllWaitThreshold().decide(short_job(arrival=30), ctx)
        assert decision.start_time == 30 + hours(6)
        assert decision.reserved_pickup

    def test_clips_at_horizon(self):
        ctx = make_ctx([100.0] * 8)  # 8-hour trace
        job = short_job(arrival=hours(5))
        decision = AllWaitThreshold().decide(job, ctx)
        assert decision.start_time >= job.arrival
        assert decision.start_time <= hours(8)


class TestLowestSlot:
    def test_picks_cheapest_hour(self):
        # Cheapest slot within the 6 h window is hour 3.
        ctx = make_ctx([100, 90, 80, 10, 50, 60, 70, 100, 100, 100])
        decision = LowestSlot().decide(short_job(), ctx)
        assert decision.start_time == hours(3)

    def test_stays_at_arrival_when_current_cheapest(self):
        ctx = make_ctx([10, 90, 80, 70, 50, 60, 70, 100, 100, 100])
        decision = LowestSlot().decide(short_job(arrival=30), ctx)
        assert decision.start_time == 30

    def test_tie_breaks_to_earliest(self):
        ctx = make_ctx([50, 20, 20, 20, 50, 50, 50, 100, 100, 100])
        decision = LowestSlot().decide(short_job(), ctx)
        assert decision.start_time == hours(1)

    def test_respects_wait_bound(self):
        # Cheapest hour (9) is outside the 6 h window: must not be chosen.
        ctx = make_ctx([50, 50, 40, 50, 50, 50, 50, 100, 100, 1.0, 100, 100])
        decision = LowestSlot().decide(short_job(), ctx)
        assert decision.start_time == hours(2)


class TestLowestWindow:
    def test_minimizes_window_integral(self):
        # avg_short = 60 min. Hour 3 alone is cheapest-slot, but the
        # 60-minute window starting mid-hour-2 can't beat hour 3 here.
        ctx = make_ctx([100, 90, 80, 10, 50, 60, 70, 100, 100, 100])
        decision = LowestWindow().decide(short_job(), ctx)
        assert decision.start_time == hours(3)

    def test_straddling_optimum(self):
        # avg 120 min: the best 2 h window is hours 3-4 (10+20), starting
        # exactly at hour 3.
        ctx = make_ctx([100, 90, 80, 10, 20, 60, 70, 100, 100, 100],
                       avg_short=120.0)
        decision = LowestWindow().decide(short_job(), ctx)
        assert decision.start_time == hours(3)

    def test_uses_queue_average_not_true_length(self):
        # True length 120 min but queue average 60: a 60-min valley at
        # hour 3 wins even though a 120-min job would prefer hours 4-5.
        ctx = make_ctx([100, 100, 100, 10, 90, 15, 15, 100, 100, 100],
                       avg_short=60.0)
        decision = LowestWindow().decide(short_job(length=120), ctx)
        assert decision.start_time == hours(3)

    def test_flat_trace_starts_now(self):
        ctx = make_ctx([100.0] * 10)
        decision = LowestWindow().decide(short_job(arrival=17), ctx)
        assert decision.start_time == 17


class TestCarbonTime:
    def test_starts_now_when_no_saving(self):
        ctx = make_ctx([100.0] * 10)
        decision = CarbonTime().decide(short_job(arrival=40), ctx)
        assert decision.start_time == 40

    def test_starts_now_when_only_worse(self):
        ctx = make_ctx([10, 90, 90, 90, 90, 90, 90, 90, 90, 90])
        decision = CarbonTime().decide(short_job(), ctx)
        assert decision.start_time == 0

    def test_prefers_nearer_equal_saving(self):
        # Hours 2 and 4 both drop to 10: CST favours the earlier one.
        ctx = make_ctx([100, 100, 10, 100, 10, 100, 100, 100, 100, 100])
        decision = CarbonTime().decide(short_job(), ctx)
        assert decision.start_time == hours(2)

    def test_takes_slightly_worse_but_much_closer_slot(self):
        # Hour 1 at 20 vs hour 5 at 10: saving 80 vs 90, completion 2 h
        # vs 6 h -> CST 40 vs 15: pick hour 1. Lowest-Window would pick
        # hour 5.
        ctx = make_ctx([100, 20, 100, 100, 100, 10, 100, 100, 100, 100])
        carbon_time = CarbonTime().decide(short_job(), ctx)
        lowest_window = LowestWindow().decide(short_job(), ctx)
        assert carbon_time.start_time == hours(1)
        assert lowest_window.start_time == hours(5)

    def test_decisions_validate(self):
        rng = np.random.default_rng(3)
        ctx = make_ctx(rng.uniform(20, 500, size=60))
        for arrival in range(0, hours(20), 37):
            job = short_job(arrival=arrival)
            decision = CarbonTime().decide(job, ctx)
            validate_decision(job, decision, ctx)
