"""Policy edge cases: boundary lengths, horizon clipping, early evictions.

Each test pins behaviour at a boundary the fuzzer brushes against:
a job exactly as long as its slack window, a planning window longer
than the carbon data, and eviction striking a suspend-resume job in
its very first segment minute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.spot import HourlyHazard
from repro.policies.base import SchedulingContext, validate_decision
from repro.policies.lowest_window import LowestWindow
from repro.policies.wait_awhile import WaitAwhile
from repro.simulator.reference import run_reference
from repro.simulator.simulation import run_simulation
from repro.simulator.validation import verify_result
from repro.units import hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace


def make_ctx(hourly, queues, granularity=5):
    trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
    return SchedulingContext(
        forecaster=PerfectForecaster(trace), queues=queues, granularity=granularity
    )


@pytest.fixture
def boundary_queues() -> QueueSet:
    return QueueSet(
        (
            JobQueue(name="short", max_length=hours(2), max_wait=hours(2), avg_length=60.0),
            JobQueue(name="long", max_length=hours(12), max_wait=hours(4), avg_length=hours(6)),
        )
    )


class TestWaitAwhileSlackBoundary:
    def test_length_exactly_fills_deadline(self, boundary_queues):
        """length == deadline - arrival: the no-slack branch, contiguous run."""
        ctx = make_ctx(np.full(24, 100.0), boundary_queues)
        # Deadline is arrival + length + W; shrink W to zero via a
        # zero-wait queue so deadline - arrival == length exactly.
        zero_wait = QueueSet(
            (JobQueue(name="short", max_length=hours(2), max_wait=0, avg_length=60.0),)
        )
        ctx = make_ctx(np.full(24, 100.0), zero_wait)
        job = Job(job_id=0, arrival=30, length=hours(2), cpus=1, queue="short")
        decision = WaitAwhile().decide(job, ctx)
        assert decision.segments == ((30, 30 + hours(2)),)
        validate_decision(job, decision, ctx)

    def test_one_minute_of_slack_still_plans(self, boundary_queues):
        """length == W boundary: the planner must fill the window exactly."""
        one_minute_wait = QueueSet(
            (JobQueue(name="short", max_length=hours(2), max_wait=1, avg_length=60.0),)
        )
        ctx = make_ctx(np.full(24, 100.0), one_minute_wait)
        job = Job(job_id=0, arrival=0, length=hours(1), cpus=1, queue="short")
        decision = WaitAwhile().decide(job, ctx)
        total = sum(end - start for start, end in decision.segments)
        assert total == hours(1)
        validate_decision(job, decision, ctx)

    def test_deadline_clipped_at_horizon(self, boundary_queues):
        """Arrival near the end of carbon data: plan clips, never overruns."""
        ctx = make_ctx(np.full(3, 100.0), boundary_queues)  # 180-minute horizon
        job = Job(job_id=0, arrival=100, length=80, cpus=1, queue="short")
        decision = WaitAwhile().decide(job, ctx)
        assert decision.segments == ((100, 180),)


class TestLowestWindowHorizonClipping:
    def test_window_exceeding_horizon_collapses_to_arrival(self, boundary_queues):
        """Estimate longer than remaining carbon data: start at arrival."""
        ctx = make_ctx(np.full(4, 100.0), boundary_queues)  # 240-minute horizon
        # The long queue's average (6 h) exceeds the whole trace, so no
        # candidate window fits and the policy must fall back to arrival.
        job = Job(job_id=0, arrival=60, length=hours(5), cpus=1, queue="long")
        decision = LowestWindow().decide(job, ctx)
        assert decision.start_time == 60

    def test_dip_within_reach_is_chosen(self, boundary_queues):
        day = np.full(24, 100.0)
        day[1:3] = 10.0  # cheap dip inside the 2 h waiting window
        ctx = make_ctx(day, boundary_queues, granularity=1)
        job = Job(job_id=0, arrival=0, length=60, cpus=1, queue="short")
        decision = LowestWindow().decide(job, ctx)
        # The 1 h-average window sits fully inside the dip from minute 60.
        assert decision.start_time == hours(1)

    def test_flat_trace_ties_to_arrival(self, boundary_queues):
        ctx = make_ctx(np.full(24, 100.0), boundary_queues, granularity=1)
        job = Job(job_id=0, arrival=15, length=60, cpus=1, queue="short")
        decision = LowestWindow().decide(job, ctx)
        assert decision.start_time == 15


class TestSuspendResumeEvictionAtStart:
    def _workload(self):
        # 90 minutes keeps the job under SpotFirst's 2 h eligibility bound.
        return WorkloadTrace(
            [Job(job_id=0, arrival=0, length=90, cpus=2)], name="sr-evict"
        )

    def _carbon(self):
        day = np.full(24, 100.0)
        day[10:16] = 20.0
        return CarbonIntensityTrace(np.tile(day, 7), name="diurnal")

    def test_eviction_in_first_segment_minute(self):
        """A suspend-resume job evicted immediately still completes validly."""
        result = run_simulation(
            self._workload(),
            self._carbon(),
            "spot-first:gaia-sr",
            eviction_model=HourlyHazard(0.99),  # evicts within the first minutes
            spot_seed=0,
        )
        record = result.records[0]
        assert record.finish >= record.first_start + record.length
        assert verify_result(result) == []

    def test_parity_with_reference_under_early_eviction(self):
        kwargs = dict(
            eviction_model=HourlyHazard(0.99),
            spot_seed=0,
            checkpointing=None,
        )
        optimized = run_simulation(
            self._workload(), self._carbon(), "spot-first:wait-awhile", **kwargs
        )
        reference = run_reference(
            self._workload(), self._carbon(), "spot-first:wait-awhile", **kwargs
        )
        from repro.difftest.diff import compare_results

        diff = compare_results(reference, optimized)
        assert diff.identical, diff.render()

    def test_eviction_with_checkpointing_preserves_work(self):
        from repro.cluster.spot import CheckpointConfig

        result = run_simulation(
            self._workload(),
            self._carbon(),
            "spot-first:nowait",
            eviction_model=HourlyHazard(0.5),
            checkpointing=CheckpointConfig(interval=30, overhead=2),
            retry_spot=True,
            spot_seed=1,
        )
        record = result.records[0]
        assert record.evictions >= 1
        assert verify_result(result) == []
