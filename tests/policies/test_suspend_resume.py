"""GAIA suspend-resume extension (queue-average knowledge only)."""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.policies.base import SchedulingContext, validate_decision
from repro.policies.suspend_resume import GaiaSuspendResume
from repro.policies.wait_awhile import WaitAwhile
from repro.units import hours
from repro.workload.job import Job, JobQueue, QueueSet


def make_ctx(hourly, avg=120.0, max_wait=hours(6)):
    trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
    queues = QueueSet(
        (JobQueue(name="q", max_length=hours(72), max_wait=max_wait, avg_length=avg),)
    )
    return SchedulingContext(forecaster=PerfectForecaster(trace), queues=queues)


def job(arrival=0, length=120):
    return Job(job_id=0, arrival=arrival, length=length, cpus=1, queue="q")


class TestGaiaSuspendResume:
    def test_matches_wait_awhile_when_estimate_exact(self):
        rng = np.random.default_rng(2)
        hourly = rng.uniform(20, 500, size=100)
        ctx = make_ctx(hourly, avg=120.0)
        the_job = job(length=120)
        assert GaiaSuspendResume().decide(the_job, ctx).segments == (
            WaitAwhile().decide(the_job, ctx).segments
        )

    def test_shorter_job_stops_early(self):
        # Estimate 120 min, true length 60: only the cheapest part of the
        # plan executes.
        hourly = [100, 90, 10, 15, 70, 60, 90, 100, 100, 100]
        ctx = make_ctx(hourly, avg=120.0)
        decision = GaiaSuspendResume().decide(job(length=60), ctx)
        total = sum(e - s for s, e in decision.segments)
        assert total == 60
        assert decision.segments[0][0] == hours(2)  # cheapest slot first

    def test_longer_job_runs_on_past_plan(self):
        # Estimate 60 min, true length 180: the plan covers the first
        # hour; the overflow runs contiguously from the plan's end.
        hourly = [100, 90, 10, 80, 70, 60, 90, 100, 100, 100]
        ctx = make_ctx(hourly, avg=60.0)
        decision = GaiaSuspendResume().decide(job(length=180), ctx)
        total = sum(e - s for s, e in decision.segments)
        assert total == 180
        # Planned window is hour 2; overflow continues from hour 3.
        assert decision.segments == ((hours(2), hours(5)),)

    def test_waiting_bounded_by_w(self):
        rng = np.random.default_rng(7)
        ctx = make_ctx(rng.uniform(20, 600, size=120), avg=90.0)
        for arrival in (0, 33, hours(4) + 5):
            for length in (10, 90, 300, 700):
                the_job = job(arrival=arrival, length=length)
                decision = GaiaSuspendResume().decide(the_job, ctx)
                validate_decision(the_job, decision, ctx)
                waiting = decision.segments[-1][1] - arrival - length
                assert 0 <= waiting <= hours(6)

    def test_no_slack_runs_contiguously(self):
        ctx = make_ctx([100.0] * 6, avg=120.0, max_wait=0)
        decision = GaiaSuspendResume().decide(job(length=120), ctx)
        assert decision.segments == ((0, 120),)

    def test_metadata(self):
        policy = GaiaSuspendResume()
        assert policy.carbon_aware
        assert policy.length_knowledge == "average"
        assert not policy.requires_job_length

    def test_registry_spec(self):
        from repro.policies.registry import make_policy

        assert isinstance(make_policy("gaia-sr"), GaiaSuspendResume)


class TestEndToEnd:
    def test_beats_lowest_window_on_carbon(self):
        """Suspension should recover savings a contiguous policy cannot."""
        from repro.simulator.simulation import run_simulation
        from repro.workload.sampling import week_long_trace
        from repro.workload.synthetic import alibaba_like
        from repro.carbon.regions import region_trace

        workload = week_long_trace(
            alibaba_like(6_000, horizon=hours(24 * 40), seed=9), num_jobs=200
        )
        carbon = region_trace("SA-AU")
        contiguous = run_simulation(workload, carbon, "lowest-window")
        suspended = run_simulation(workload, carbon, "gaia-sr")
        assert suspended.total_carbon_g < contiguous.total_carbon_g
