"""Policy base types: context, candidates, decision validation."""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import SchedulingError
from repro.policies.base import Decision, SchedulingContext, validate_decision
from repro.units import hours
from repro.workload.job import Job, JobQueue, QueueSet


@pytest.fixture
def ctx(two_queue_set):
    trace = CarbonIntensityTrace(np.full(24 * 10, 100.0))
    return SchedulingContext(
        forecaster=PerfectForecaster(trace), queues=two_queue_set, granularity=5
    )


def short_job(arrival=0, length=60):
    return Job(job_id=0, arrival=arrival, length=length, cpus=1, queue="short")


class TestSchedulingContext:
    def test_horizon_defaults_to_trace(self, ctx):
        assert ctx.carbon_horizon == 24 * 10 * 60

    def test_rejects_bad_granularity(self, two_queue_set):
        trace = CarbonIntensityTrace([100.0])
        with pytest.raises(SchedulingError):
            SchedulingContext(
                forecaster=PerfectForecaster(trace), queues=two_queue_set, granularity=0
            )

    def test_queue_of_uses_label(self, ctx):
        job = Job(job_id=0, arrival=0, length=hours(10), cpus=1, queue="short")
        assert ctx.queue_of(job).name == "short"

    def test_queue_of_falls_back_to_length(self, ctx):
        job = Job(job_id=0, arrival=0, length=hours(10), cpus=1)
        assert ctx.queue_of(job).name == "long"


class TestCandidateStarts:
    def test_includes_arrival_and_step(self, ctx):
        candidates = ctx.candidate_starts(100, 60, 30)
        assert candidates[0] == 100
        assert candidates[1] - candidates[0] == 5

    def test_includes_latest(self, ctx):
        candidates = ctx.candidate_starts(0, 17, 10)
        assert candidates[-1] == 17

    def test_clipped_at_horizon(self, ctx):
        arrival = ctx.carbon_horizon - 100
        candidates = ctx.candidate_starts(arrival, hours(6), 80)
        assert candidates[-1] + 80 <= ctx.carbon_horizon

    def test_degenerate_window(self, ctx):
        arrival = ctx.carbon_horizon - 10
        candidates = ctx.candidate_starts(arrival, hours(6), 60)
        np.testing.assert_array_equal(candidates, [arrival])


class TestValidateDecision:
    def test_valid_simple(self, ctx):
        validate_decision(short_job(), Decision(start_time=0), ctx)

    def test_rejects_start_before_arrival(self, ctx):
        with pytest.raises(SchedulingError):
            validate_decision(short_job(arrival=50), Decision(start_time=20), ctx)

    def test_rejects_start_past_wait_bound(self, ctx):
        job = short_job()  # short queue: W = 6 h
        with pytest.raises(SchedulingError):
            validate_decision(job, Decision(start_time=hours(8)), ctx)

    def test_allows_hour_tolerance(self, ctx):
        job = short_job()
        validate_decision(job, Decision(start_time=hours(6) + 30), ctx)

    def test_segments_must_start_at_start_time(self, ctx):
        job = short_job(length=60)
        decision = Decision(start_time=0, segments=((10, 70),))
        with pytest.raises(SchedulingError):
            validate_decision(job, decision, ctx)

    def test_segments_must_sum_to_length(self, ctx):
        job = short_job(length=60)
        decision = Decision(start_time=0, segments=((0, 30), (50, 70)))
        with pytest.raises(SchedulingError):
            validate_decision(job, decision, ctx)

    def test_segments_must_not_overlap(self, ctx):
        job = short_job(length=60)
        decision = Decision(start_time=0, segments=((0, 40), (30, 50)))
        with pytest.raises(SchedulingError):
            validate_decision(job, decision, ctx)

    def test_rejects_empty_segment(self, ctx):
        job = short_job(length=60)
        decision = Decision(start_time=0, segments=((0, 0), (0, 60)))
        with pytest.raises(SchedulingError):
            validate_decision(job, decision, ctx)

    def test_valid_segment_plan(self, ctx):
        job = short_job(length=60)
        decision = Decision(start_time=0, segments=((0, 30), (100, 130)))
        validate_decision(job, decision, ctx)
