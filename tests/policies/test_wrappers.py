"""RES-First / Spot-First / Spot-RES wrappers."""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import SchedulingError
from repro.policies.base import SchedulingContext
from repro.policies.carbon_time import CarbonTime
from repro.policies.ecovisor import Ecovisor
from repro.policies.lowest_window import LowestWindow
from repro.policies.wait_awhile import WaitAwhile
from repro.policies.wrappers import ResFirst, SpotFirst, SpotRes
from repro.units import days, hours
from repro.workload.job import Job, JobQueue, QueueSet


@pytest.fixture
def ctx():
    hourly = [100, 90, 10, 80, 70, 60, 50, 100] + [100] * 100
    trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
    queues = QueueSet(
        (
            JobQueue(name="short", max_length=hours(2), max_wait=hours(6), avg_length=60.0),
            JobQueue(name="long", max_length=days(3), max_wait=hours(24), avg_length=300.0),
        )
    )
    return SchedulingContext(forecaster=PerfectForecaster(trace), queues=queues)


def short_job(**kw):
    return Job(job_id=0, arrival=0, length=60, cpus=1, queue="short", **kw)


def long_job():
    return Job(job_id=1, arrival=0, length=hours(10), cpus=1, queue="long")


class TestResFirst:
    def test_inherits_timing(self, ctx):
        inner = CarbonTime()
        wrapped = ResFirst(inner)
        assert wrapped.decide(short_job(), ctx).start_time == (
            inner.decide(short_job(), ctx).start_time
        )

    def test_marks_reserved_pickup(self, ctx):
        decision = ResFirst(CarbonTime()).decide(short_job(), ctx)
        assert decision.reserved_pickup
        assert not decision.use_spot
        assert decision.segments is None

    def test_name(self):
        assert ResFirst(CarbonTime()).name == "RES-First-Carbon-Time"

    def test_rejects_suspend_resume_inner(self):
        # A trace that forces Ecovisor to pause mid-job, yielding a
        # multi-segment plan that RES-First cannot execute.
        hourly = [200] * 2 + [50] * 8 + [200] * 120
        trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
        queues = QueueSet(
            (JobQueue(name="long", max_length=days(3), max_wait=hours(24)),)
        )
        paused_ctx = SchedulingContext(
            forecaster=PerfectForecaster(trace), queues=queues
        )
        paused_job = Job(job_id=0, arrival=0, length=hours(10), cpus=1, queue="long")
        assert len(Ecovisor().decide(paused_job, paused_ctx).segments) > 1
        wrapped = ResFirst(Ecovisor())
        with pytest.raises(SchedulingError):
            wrapped.decide(paused_job, paused_ctx)

    def test_rejects_missing_inner(self):
        with pytest.raises(SchedulingError):
            ResFirst(None)

    def test_metadata_propagates(self):
        wrapped = ResFirst(LowestWindow())
        assert wrapped.carbon_aware
        assert not wrapped.performance_aware
        assert wrapped.length_knowledge == "average"


class TestSpotFirst:
    def test_short_jobs_go_to_spot(self, ctx):
        decision = SpotFirst(CarbonTime()).decide(short_job(), ctx)
        assert decision.use_spot
        assert not decision.reserved_pickup

    def test_long_jobs_stay_on_demand(self, ctx):
        decision = SpotFirst(CarbonTime()).decide(long_job(), ctx)
        assert not decision.use_spot

    def test_jmax_extends_eligibility(self, ctx):
        policy = SpotFirst(CarbonTime(), spot_max_length=days(3))
        assert policy.decide(long_job(), ctx).use_spot

    def test_preserves_suspend_resume_plans(self, ctx):
        decision = SpotFirst(Ecovisor()).decide(short_job(), ctx)
        assert decision.use_spot
        assert decision.segments is not None

    def test_rejects_bad_jmax(self):
        with pytest.raises(SchedulingError):
            SpotFirst(CarbonTime(), spot_max_length=0)

    def test_name(self):
        assert SpotFirst(CarbonTime()).name == "Spot-First-Carbon-Time"


class TestSpotRes:
    def test_short_spot_long_reserved(self, ctx):
        policy = SpotRes(CarbonTime())
        short_decision = policy.decide(short_job(), ctx)
        long_decision = policy.decide(long_job(), ctx)
        assert short_decision.use_spot and not short_decision.reserved_pickup
        assert long_decision.reserved_pickup and not long_decision.use_spot

    def test_exact_length_knowledge_passthrough(self):
        # Two separated carbon valleys force Wait Awhile into a
        # two-segment plan; long jobs under RES-First semantics cannot be
        # suspend-resume.
        hourly = [100, 5, 100, 100, 100, 5] + [100] * 120
        trace = CarbonIntensityTrace(np.asarray(hourly, dtype=float))
        queues = QueueSet(
            (JobQueue(name="long", max_length=days(3), max_wait=hours(24)),)
        )
        paused_ctx = SchedulingContext(
            forecaster=PerfectForecaster(trace), queues=queues
        )
        paused_job = Job(job_id=0, arrival=0, length=120, cpus=1, queue="long")
        assert len(WaitAwhile().decide(paused_job, paused_ctx).segments) == 2
        policy = SpotRes(WaitAwhile())
        with pytest.raises(SchedulingError):
            policy.decide(paused_job, paused_ctx)

    def test_name(self):
        assert SpotRes(CarbonTime()).name == "Spot-RES-Carbon-Time"
