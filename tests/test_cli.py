"""Artifact-style command-line interface."""

import csv
import os

import pytest

from repro.cli import _parse_waiting, build_parser, main
from repro.errors import ReproError
from repro.units import hours


class TestParsing:
    def test_waiting_spec(self):
        assert _parse_waiting("6x24") == (hours(6), hours(24))
        assert _parse_waiting("0x0") == (0, 0)
        assert _parse_waiting("1.5X12") == (90, hours(12))

    def test_bad_waiting_spec(self):
        with pytest.raises(ReproError):
            _parse_waiting("six-by-24")

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.policy == "nowait"
        assert args.waiting == "6x24"


class TestMain:
    def test_basic_run(self, capsys):
        code = main(["--workload", "poisson", "--horizon-days", "3",
                     "--region", "CA-US", "--policy", "carbon-time"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Carbon-Time" in out
        assert "carbon_kg" in out

    def test_unknown_policy_errors(self, capsys):
        assert main(["--policy", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_region_errors(self, capsys):
        assert main(["--workload", "poisson", "--region", "ATLANTIS"]) == 2
        assert "ATLANTIS" in capsys.readouterr().err

    def test_unknown_workload_errors(self, capsys):
        assert main(["--workload", "slurmtron"]) == 2
        assert "slurmtron" in capsys.readouterr().err

    def test_output_files(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        code = main([
            "--workload", "poisson", "--horizon-days", "3",
            "--region", "SA-AU", "--policy", "res-first:carbon-time",
            "--reserved", "5", "--output-dir", out_dir,
        ])
        assert code == 0
        for name in ("aggregate.csv", "details.csv", "runtime.csv"):
            assert os.path.exists(os.path.join(out_dir, name))
        with open(os.path.join(out_dir, "details.csv")) as handle:
            rows = list(csv.DictReader(handle))
        assert rows and {"job_id", "carbon_g", "waiting_min"} <= set(rows[0])
        with open(os.path.join(out_dir, "runtime.csv")) as handle:
            runtime = list(csv.DictReader(handle))
        assert runtime and float(runtime[0]["carbon_intensity"]) > 0

    def test_csv_workload_and_carbon_roundtrip(self, tmp_path, capsys):
        from repro.carbon.regions import region_trace
        from repro.workload.synthetic import poisson_exponential

        workload_path = str(tmp_path / "jobs.csv")
        carbon_path = str(tmp_path / "ci.csv")
        poisson_exponential(horizon=hours(72), seed=2).to_csv(workload_path)
        region_trace("NL", num_hours=24 * 30).to_csv(carbon_path)
        code = main([
            "--workload", workload_path, "--region", carbon_path,
            "--policy", "lowest-window",
        ])
        assert code == 0
        assert "Lowest-Window" in capsys.readouterr().out

    def test_spot_options(self, capsys):
        code = main([
            "--workload", "poisson", "--horizon-days", "3",
            "--policy", "spot-first:carbon-time", "--eviction-rate", "0.1",
            "--checkpoint-interval", "30",
        ])
        assert code == 0

    def test_carbon_start_hour_offsets(self, capsys):
        code = main([
            "--workload", "poisson", "--horizon-days", "3",
            "--region", "CA-US", "--carbon-start-hour", "744",
        ])
        assert code == 0

    def test_forecaster_choices(self, capsys):
        for forecaster in ("noisy", "historical"):
            code = main([
                "--workload", "poisson", "--horizon-days", "3",
                "--policy", "carbon-time", "--forecaster", forecaster,
            ])
            assert code == 0

    def test_online_estimation_flag(self, capsys):
        code = main([
            "--workload", "poisson", "--horizon-days", "3",
            "--policy", "lowest-window", "--online-estimation",
        ])
        assert code == 0

    def test_carbon_price_flag(self, capsys):
        code = main([
            "--workload", "poisson", "--horizon-days", "3",
            "--carbon-price", "0.5",
        ])
        assert code == 0

    def test_sparklines_printed(self, capsys):
        main(["--workload", "poisson", "--horizon-days", "3"])
        out = capsys.readouterr().out
        assert "demand" in out and "carbon" in out
