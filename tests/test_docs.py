"""Documentation stays wired: links resolve, no orphan pages, and the
observability contract's schema matches what the docs enumerate."""

import sys
from pathlib import Path

from repro.obs.events import EVENT_TYPES

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))
import check_docs  # noqa: E402  (repo tool, imported for its check functions)


class TestLinks:
    def test_all_relative_links_resolve(self):
        assert check_docs.check_links(check_docs.doc_pages()) == []

    def test_every_docs_page_is_linked_from_the_readme(self):
        assert check_docs.check_docs_reachable() == []


class TestObservabilityContract:
    def test_every_event_type_is_documented(self):
        page = (REPO_ROOT / "docs" / "observability.md").read_text()
        for name in EVENT_TYPES:
            assert f"`{name}`" in page, f"event type {name} missing from docs"

    def test_documented_env_switches_exist_in_the_tracer(self):
        tracer_source = (
            REPO_ROOT / "src" / "repro" / "obs" / "tracer.py"
        ).read_text()
        for variable in ("REPRO_TRACE", "REPRO_TRACE_FILE"):
            assert variable in tracer_source
