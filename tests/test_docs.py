"""Documentation stays wired: links resolve, no orphan pages, the
observability contract's schema matches what the docs enumerate, and
the service API reference matches the live route table and CLI."""

import sys
from pathlib import Path

from repro.obs.events import EVENT_TYPES
from repro.service.__main__ import build_parser
from repro.service.http import route_table

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))
import check_docs  # noqa: E402  (repo tool, imported for its check functions)


class TestLinks:
    def test_all_relative_links_resolve(self):
        assert check_docs.check_links(check_docs.doc_pages()) == []

    def test_every_docs_page_is_linked_from_the_readme(self):
        assert check_docs.check_docs_reachable() == []


class TestObservabilityContract:
    def test_every_event_type_is_documented(self):
        page = (REPO_ROOT / "docs" / "observability.md").read_text()
        for name in EVENT_TYPES:
            assert f"`{name}`" in page, f"event type {name} missing from docs"

    def test_documented_env_switches_exist_in_the_tracer(self):
        tracer_source = (
            REPO_ROOT / "src" / "repro" / "obs" / "tracer.py"
        ).read_text()
        for variable in ("REPRO_TRACE", "REPRO_TRACE_FILE"):
            assert variable in tracer_source


class TestServiceApiContract:
    """docs/service.md matches the introspected service surface."""

    def test_checker_reports_no_drift(self):
        assert check_docs.check_service_api() == []

    def test_every_route_has_a_reference_section(self):
        page = (REPO_ROOT / "docs" / "service.md").read_text()
        for route in route_table():
            heading = f"### {route.method} {route.pattern}"
            assert heading in page, f"{heading} missing from docs/service.md"

    def test_every_cli_flag_is_documented(self):
        page = (REPO_ROOT / "docs" / "service.md").read_text()
        for action in build_parser()._actions:
            for option in action.option_strings:
                if option in ("-h", "--help"):
                    continue
                assert f"`{option}`" in page, f"flag {option} missing from docs"

    def test_route_handlers_exist_on_the_server(self):
        from repro.service.http import ServiceServer

        for route in route_table():
            handler = getattr(ServiceServer, route.handler, None)
            assert callable(handler), f"{route.handler} missing on ServiceServer"
