"""Scenario generator: determinism, picklability, and spec validity."""

from __future__ import annotations

import pickle

import pytest

from repro.difftest.scenarios import DEFAULT_SPACE, POLICY_POOL, ScenarioSpace, scenario_spec
from repro.policies.registry import make_policy
from repro.simulator.runner.spec import SimulationSpec


def test_same_seed_index_is_deterministic():
    first = scenario_spec(3, 5)
    second = scenario_spec(3, 5)
    assert first.digest() == second.digest()


def test_different_indices_differ():
    digests = {scenario_spec(0, index).digest() for index in range(10)}
    assert len(digests) == 10


def test_different_seeds_differ():
    assert scenario_spec(0, 0).digest() != scenario_spec(1, 0).digest()


def test_specs_are_picklable():
    spec = scenario_spec(0, 2)
    clone = pickle.loads(pickle.dumps(spec))
    assert isinstance(clone, SimulationSpec)
    assert clone.digest() == spec.digest()


def test_policy_pool_all_constructible():
    for spec_string in POLICY_POOL:
        make_policy(spec_string)


def test_sampled_specs_run():
    """A handful of sampled scenarios must simulate cleanly end to end."""
    for index in range(5):
        spec = scenario_spec(11, index)
        result = spec.run()
        assert result.records is not None


def test_jobs_fit_queue_bounds():
    """Clamping guarantees every sampled job fits the longest queue."""
    from repro.units import days

    for index in range(20):
        spec = scenario_spec(2, index)
        for _, _, length, _, _ in spec.workload.jobs:
            assert length <= days(3)


def test_space_bounds_are_respected():
    space = ScenarioSpace(max_jobs=6)
    for index in range(10):
        spec = scenario_spec(0, index, space)
        assert len(spec.workload.jobs) <= 6
        assert spec.granularity in DEFAULT_SPACE.granularities
        assert spec.instance_overhead_minutes in DEFAULT_SPACE.overhead_choices
        assert spec.policy in POLICY_POOL


def test_space_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_SPACE.max_jobs = 99  # type: ignore[misc]
