"""Metamorphic invariant suite (hypothesis-driven paper laws).

Each test drives one entry of :data:`repro.difftest.invariants.INVARIANTS`
over randomized small workloads and synthetic carbon traces; the table in
``docs/testing.md`` traces every invariant back to its paper claim.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.synthetic import RegionProfile, generate_carbon_trace
from repro.difftest.invariants import (
    INVARIANTS,
    SLACK_MONOTONE_POLICIES,
    check_carbon_scaling,
    check_cost_option_ordering,
    check_energy_conservation,
    check_federation_single_region,
    check_migration_delay_neutrality,
    check_scaling_feasibility,
    check_scaling_greedy_dominance,
    check_slack_monotonicity,
    check_zero_slack_collapses_to_nowait,
    slack_queue_set,
)
from repro.simulator.simulation import run_simulation
from repro.units import hours
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

WAITING_POLICIES = (
    "allwait-threshold",
    "lowest-slot",
    "lowest-window",
    "carbon-time",
    "wait-awhile",
    "ecovisor",
    "gaia-sr",
)


@st.composite
def workloads(draw, max_jobs=8):
    """Small arrival-ordered workloads; lengths fit the short queue."""
    num_jobs = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for job_id in range(num_jobs):
        jobs.append(
            Job(
                job_id=job_id,
                arrival=draw(st.integers(min_value=0, max_value=hours(12))),
                length=draw(st.integers(min_value=1, max_value=hours(2))),
                cpus=draw(st.integers(min_value=1, max_value=4)),
            )
        )
    return WorkloadTrace(jobs, name="meta")


@st.composite
def uniform_workloads(draw, max_jobs=5):
    """Workloads whose jobs share one length, so Ĵ == J exactly.

    Slack monotonicity requires the policy's length estimate to be
    exact (see :func:`check_slack_monotonicity`); a single shared
    length makes every queue average equal the true length.
    """
    num_jobs = draw(st.integers(min_value=1, max_value=max_jobs))
    length = draw(st.integers(min_value=1, max_value=hours(2)))
    jobs = [
        Job(
            job_id=job_id,
            arrival=draw(st.integers(min_value=0, max_value=hours(12))),
            length=length,
            cpus=draw(st.integers(min_value=1, max_value=4)),
        )
        for job_id in range(num_jobs)
    ]
    return WorkloadTrace(jobs, name="meta-uniform")


@st.composite
def carbon_traces(draw):
    """Synthetic diurnal traces long enough for any metamorphic run."""
    profile = RegionProfile(
        name="meta-region",
        mean_ci=draw(st.floats(min_value=80.0, max_value=600.0)),
        diurnal_amplitude=draw(st.floats(min_value=0.0, max_value=0.6)),
        seasonal_amplitude=0.0,
        noise_sigma=draw(st.floats(min_value=0.0, max_value=0.2)),
        diurnal_peak_hour=draw(st.floats(min_value=0.0, max_value=23.0)),
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return generate_carbon_trace(profile, num_hours=5 * 24, seed=seed)


# ---------------------------------------------------------------------------
# The five paper laws
# ---------------------------------------------------------------------------


class TestZeroSlackCollapse:
    @given(
        workload=workloads(),
        carbon=carbon_traces(),
        policy=st.sampled_from(WAITING_POLICIES),
    )
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_collapses_to_nowait(self, workload, carbon, policy):
        check_zero_slack_collapses_to_nowait(workload, carbon, policy)


class TestCarbonScaling:
    @given(
        workload=workloads(),
        carbon=carbon_traces(),
        policy=st.sampled_from(WAITING_POLICIES + ("nowait",)),
        exponent=st.integers(min_value=-3, max_value=3),
    )
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_footprint_scales_linearly(self, workload, carbon, policy, exponent):
        check_carbon_scaling(workload, carbon, policy, scale=2.0**exponent)


class TestSlackMonotonicity:
    @given(
        workload=uniform_workloads(),
        carbon=carbon_traces(),
        policy=st.sampled_from(SLACK_MONOTONE_POLICIES),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_wider_slack_never_costs_carbon(self, workload, carbon, policy):
        check_slack_monotonicity(workload, carbon, policy)


class TestCostOptionOrdering:
    @given(workload=workloads(), carbon=carbon_traces())
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_spot_leq_reserved_leq_on_demand(self, workload, carbon):
        check_cost_option_ordering(workload, carbon)


class TestEnergyConservation:
    @given(
        workload=workloads(),
        carbon=carbon_traces(),
        policy=st.sampled_from(WAITING_POLICIES),
        overhead=st.sampled_from((0, 2, 5)),
    )
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_per_job_energy_sums_to_total(self, workload, carbon, policy, overhead):
        result = run_simulation(
            workload, carbon, policy, instance_overhead_minutes=overhead
        )
        check_energy_conservation(result, instance_overhead_minutes=overhead)


# ---------------------------------------------------------------------------
# The federated and scaling laws
# ---------------------------------------------------------------------------


@st.composite
def malleable_jobs(draw):
    from repro.scaling import MalleableJob

    return MalleableJob(
        work=float(draw(st.integers(min_value=30, max_value=600))),
        max_cpus=draw(st.integers(min_value=1, max_value=6)),
        arrival=draw(st.integers(min_value=0, max_value=hours(12))),
    )


@st.composite
def concave_speedups(draw):
    from repro.scaling import AmdahlSpeedup, LinearSpeedup

    if draw(st.booleans()):
        return LinearSpeedup()
    return AmdahlSpeedup(draw(st.floats(min_value=0.5, max_value=1.0)))


class TestFederationSingleRegion:
    @given(
        workload=workloads(max_jobs=5),
        carbon=carbon_traces(),
        policy=st.sampled_from(WAITING_POLICIES + ("nowait",)),
    )
    @settings(max_examples=5, deadline=None, derandomize=True)
    def test_degenerates_to_plain_engine(self, workload, carbon, policy):
        check_federation_single_region(workload, carbon, policy)


class TestMigrationDelayNeutrality:
    @given(
        workload=workloads(max_jobs=5),
        traces=st.lists(carbon_traces(), min_size=2, max_size=3),
        policy=st.sampled_from(("nowait", "carbon-time", "lowest-window")),
        migration=st.sampled_from((30, 90, 240)),
    )
    @settings(max_examples=5, deadline=None, derandomize=True)
    def test_home_placements_are_delay_blind(
        self, workload, traces, policy, migration
    ):
        from repro.federation import FederatedRegion

        regions = [
            FederatedRegion(name=f"neutral-{index}", carbon=trace)
            for index, trace in enumerate(traces)
        ]
        check_migration_delay_neutrality(workload, regions, policy, migration)


class TestScalingGreedyDominance:
    @given(job=malleable_jobs(), carbon=carbon_traces(), speedup=concave_speedups())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_greedy_never_loses_to_fixed(self, job, carbon, speedup):
        check_scaling_greedy_dominance(job, carbon, speedup=speedup)


class TestScalingFeasibility:
    @given(
        job=malleable_jobs(),
        carbon=carbon_traces(),
        speedup=concave_speedups(),
        slack=st.integers(min_value=1, max_value=hours(24)),
    )
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_plans_meet_their_constraints(self, job, carbon, speedup, slack):
        # rate(1) == 1 for every speedup model, so this deadline always
        # leaves a feasible single-CPU allocation.
        deadline = job.arrival + int(job.work) + slack
        check_scaling_feasibility(job, carbon, deadline, speedup=speedup)


# ---------------------------------------------------------------------------
# Registry integrity
# ---------------------------------------------------------------------------


def test_registry_lists_all_nine_laws():
    assert set(INVARIANTS) == {
        "zero-slack-collapse",
        "carbon-scaling",
        "slack-monotonicity",
        "cost-option-ordering",
        "energy-conservation",
        "federation-single-region",
        "migration-delay-neutrality",
        "scaling-greedy-dominance",
        "scaling-feasibility",
    }
    for name, entry in INVARIANTS.items():
        assert callable(entry["check"]), name
        assert isinstance(entry["claim"], str) and entry["claim"], name


def test_slack_queue_set_scales_waits():
    zero = slack_queue_set(0.0)
    assert all(queue.max_wait == 0 for queue in zero)
    doubled = slack_queue_set(2.0)
    assert doubled["short"].max_wait == hours(12)
    assert doubled["long"].max_wait == hours(48)


def test_energy_violation_detected(tiny_workload, diurnal_carbon):
    """The checks are falsifiable: a tampered result must fail them."""
    import dataclasses

    import pytest

    result = run_simulation(tiny_workload, diurnal_carbon, "nowait")
    tampered_record = dataclasses.replace(
        result.records[0], energy_kwh=result.records[0].energy_kwh * 2 + 1.0
    )
    tampered = dataclasses.replace(
        result, records=(tampered_record, *result.records[1:])
    )
    with pytest.raises(AssertionError):
        check_energy_conservation(tampered)
