"""The differential fuzzer CLI: clean runs, perturbed runs, and bundles."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.difftest.bundle import minimize_spec, spec_with_jobs, write_bundle
from repro.difftest.cli import main
from repro.difftest.diff import compare_results
from repro.difftest.scenarios import scenario_spec
from repro.simulator.reference import run_reference
from repro.simulator.runner.spec import SimulationSpec


def test_clean_run_exits_zero(tmp_path, capsys):
    code = main(["--scenarios", "8", "--seed", "0", "--bundle-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "8 scenario(s) checked (seed 0), 0 divergence(s)" in out
    assert not any(tmp_path.iterdir()), "clean run must write no bundles"


def test_perturbed_engine_is_caught(tmp_path, capsys):
    """The oracle self-test: a fault-planned engine must diverge."""
    code = main(
        [
            "--scenarios", "50", "--seed", "0",
            "--perturb", "forecast-bias:bias=0.8",
            "--bundle-dir", str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "DIVERGENCE" in out
    bundles = sorted(tmp_path.glob("divergence-*"))
    assert bundles, "a divergence must produce a repro bundle"
    payload = json.loads((bundles[0] / "bundle.json").read_text())
    assert payload["perturb"] == "forecast-bias:bias=0.8"
    assert payload["minimized_jobs"] <= payload["num_jobs"]
    assert (bundles[0] / "report.txt").read_text().strip()
    with open(bundles[0] / "spec.pkl", "rb") as stream:
        minimized = pickle.load(stream)
    assert isinstance(minimized, SimulationSpec)
    # The minimized spec still reproduces the divergence.
    reference = run_reference(**minimized.to_kwargs())
    from dataclasses import replace

    from repro.faults import parse_fault_plan

    perturbed = replace(
        minimized,
        fault_plan=parse_fault_plan("forecast-bias:bias=0.8", seed=minimized.spot_seed),
    ).run()
    assert not compare_results(reference, perturbed).identical


def test_keep_going_counts_all(tmp_path, capsys):
    code = main(
        [
            "--scenarios", "6", "--seed", "1", "--keep-going", "--quiet",
            "--bundle-dir", str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "6 scenario(s) checked (seed 1)" in out


def test_minimizer_preserves_divergence_predicate():
    """ddmin keeps only jobs needed by the (synthetic) oracle predicate."""
    spec = scenario_spec(0, 0)
    assert len(spec.workload.jobs) >= 2
    needed = spec.workload.jobs[0]

    def still_diverges(candidate: SimulationSpec) -> bool:
        return needed in candidate.workload.jobs

    minimized = minimize_spec(spec, still_diverges)
    assert needed in minimized.workload.jobs
    assert len(minimized.workload.jobs) == 1


def test_spec_with_jobs_changes_digest():
    spec = scenario_spec(0, 3)
    if len(spec.workload.jobs) < 2:
        pytest.skip("scenario sampled a single-job workload")
    subset = spec_with_jobs(spec, spec.workload.jobs[:1])
    assert subset.digest() != spec.digest()
    assert len(subset.workload.jobs) == 1


def test_write_bundle_layout(tmp_path):
    from repro.difftest.diff import ResultDiff

    spec = scenario_spec(0, 0)
    diff = ResultDiff(
        identical=False,
        schedule_diff={
            "identical": False,
            "lengths": [1, 0],
            "count_deltas": {"job_schedule": (1, 0)},
            "first_divergence": {
                "index": 0,
                "a": {"type": "job_schedule", "job_id": 0},
                "b": None,
            },
        },
    )
    bundle_dir = write_bundle(
        tmp_path, spec=spec, minimized=spec, diff=diff, seed=9, scenario_index=4
    )
    assert bundle_dir.name == "divergence-s9-i4"
    assert {path.name for path in bundle_dir.iterdir()} == {
        "bundle.json",
        "spec.pkl",
        "report.txt",
    }
