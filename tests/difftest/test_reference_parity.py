"""Reference-engine parity: both engines agree on hand-picked configs.

The fuzzer (``python -m repro.difftest``) sweeps randomized scenarios;
these tests pin a curated set of configurations — one per engine
feature — so a parity break localizes to the feature that diverged.
"""

from __future__ import annotations

import pytest

from repro.cluster.spot import CheckpointConfig, DiurnalHazard, HourlyHazard
from repro.difftest.diff import compare_results, schedule_events
from repro.simulator.reference import run_reference
from repro.simulator.simulation import run_simulation


def assert_parity(workload, carbon, policy, **kwargs):
    optimized = run_simulation(workload, carbon, policy, **kwargs)
    reference = run_reference(workload, carbon, policy, **kwargs)
    diff = compare_results(reference, optimized)
    assert diff.identical, diff.render()
    return reference, optimized


@pytest.mark.parametrize(
    "policy",
    [
        "nowait",
        "allwait-threshold",
        "lowest-slot",
        "lowest-window",
        "carbon-time",
        "wait-awhile",
        "ecovisor",
        "gaia-sr",
    ],
)
def test_all_policies_agree(policy, tiny_workload, diurnal_carbon):
    assert_parity(tiny_workload, diurnal_carbon, policy)


@pytest.mark.parametrize(
    "policy", ["res-first:carbon-time", "spot-first:lowest-slot", "spot-res:carbon-time"]
)
def test_wrappers_agree(policy, tiny_workload, diurnal_carbon):
    assert_parity(tiny_workload, diurnal_carbon, policy, reserved_cpus=4)


def test_evictions_and_checkpointing_agree(tiny_workload, diurnal_carbon):
    assert_parity(
        tiny_workload,
        diurnal_carbon,
        "spot-first:nowait",
        eviction_model=HourlyHazard(0.1),
        checkpointing=CheckpointConfig(interval=30, overhead=2),
        retry_spot=True,
        spot_seed=7,
    )


def test_diurnal_hazard_and_overhead_agree(tiny_workload, diurnal_carbon):
    assert_parity(
        tiny_workload,
        diurnal_carbon,
        "spot-first:carbon-time",
        eviction_model=DiurnalHazard(0.05, amplitude=0.5, peak_hour=14.0),
        instance_overhead_minutes=3,
        spot_seed=3,
    )


def test_noisy_forecast_agrees(tiny_workload, diurnal_carbon):
    assert_parity(
        tiny_workload, diurnal_carbon, "carbon-time",
        forecast_sigma=0.2, forecast_seed=11,
    )


def test_granularity_one_agrees(tiny_workload, diurnal_carbon):
    assert_parity(tiny_workload, diurnal_carbon, "lowest-window", granularity=1)


def test_reference_result_is_verifiable(tiny_workload, diurnal_carbon):
    from repro.simulator.validation import verify_result

    reference = run_reference(tiny_workload, diurnal_carbon, "carbon-time")
    assert verify_result(reference) == []


def test_compare_results_flags_injected_divergence(tiny_workload, diurnal_carbon):
    """A mutated optimized engine must produce a non-identical diff."""
    from repro.faults import parse_fault_plan

    reference = run_reference(tiny_workload, diurnal_carbon, "spot-first:nowait")
    perturbed = run_simulation(
        tiny_workload, diurnal_carbon, "spot-first:nowait",
        fault_plan=parse_fault_plan("eviction-storm:rate=0.9,hours=48", seed=0),
    )
    diff = compare_results(reference, perturbed)
    assert not diff.identical
    report = diff.render()
    assert report  # non-empty human-readable divergence
    assert diff.first_diverging_minute is not None


def test_schedule_events_are_integer_wire_form(tiny_workload, diurnal_carbon):
    result = run_simulation(tiny_workload, diurnal_carbon, "nowait")
    events = schedule_events(result)
    assert events, "expected wire events for a non-empty result"
    for event in events:
        for key, value in event.items():
            if key in ("type", "queue", "option"):
                assert isinstance(value, str)
            else:
                assert isinstance(value, int), f"{key} should be int, got {value!r}"
