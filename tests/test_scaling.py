"""Carbon-aware scaling of malleable jobs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import ConfigError, SchedulingError
from repro.scaling.planner import (
    MalleableJob,
    fixed_allocation_plan,
    plan_carbon_scaling,
)
from repro.scaling.speedup import AmdahlSpeedup, LinearSpeedup
from repro.units import hours


def trace(hourly):
    return CarbonIntensityTrace(np.asarray(hourly, dtype=float))


class TestSpeedups:
    def test_linear(self):
        model = LinearSpeedup()
        assert model.rate(4) == 4.0
        np.testing.assert_allclose(model.marginal_rates(3), [1.0, 1.0, 1.0])

    def test_amdahl_caps(self):
        model = AmdahlSpeedup(0.9)
        assert model.rate(1) == pytest.approx(1.0)
        assert model.rate(10**6) == pytest.approx(10.0, rel=0.01)  # 1/(1-p)

    def test_amdahl_marginals_decreasing(self):
        marginals = AmdahlSpeedup(0.8).marginal_rates(8)
        assert all(b <= a + 1e-12 for a, b in zip(marginals, marginals[1:]))

    def test_validation(self):
        with pytest.raises(ConfigError):
            AmdahlSpeedup(0.0)
        with pytest.raises(ConfigError):
            LinearSpeedup().marginal_rates(0)
        with pytest.raises(ConfigError):
            LinearSpeedup().rate(-1)


class TestMalleableJob:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MalleableJob(work=0, max_cpus=1)
        with pytest.raises(ConfigError):
            MalleableJob(work=10, max_cpus=0)
        with pytest.raises(ConfigError):
            MalleableJob(work=10, max_cpus=1, arrival=-1)


class TestPlanner:
    def test_concentrates_in_cheapest_slot(self):
        # 60 work-minutes, 2 CPUs: fits entirely in the single cheap hour.
        ci = [100, 100, 10, 100, 100, 100]
        job = MalleableJob(work=60, max_cpus=2)
        plan = plan_carbon_scaling(job, trace(ci), deadline=hours(6))
        assert plan.allocation == [(hours(2), hours(3), 1)]
        assert plan.carbon_g == pytest.approx(10 * 0.01)

    def test_scales_up_in_valley(self):
        # 240 work-minutes, one cheap hour: 2 CPUs there + the rest in
        # the next-cheapest hours beats running flat.
        ci = [100, 90, 10, 80, 100, 100]
        job = MalleableJob(work=240, max_cpus=2)
        plan = plan_carbon_scaling(job, trace(ci), deadline=hours(6))
        by_slot = {start: cpus for start, _, cpus in plan.allocation}
        assert by_slot[hours(2)] == 2  # full throttle in the valley

    def test_work_covered(self):
        rng = np.random.default_rng(0)
        ci = rng.uniform(20, 500, size=30)
        job = MalleableJob(work=777, max_cpus=4)
        plan = plan_carbon_scaling(job, trace(ci), deadline=hours(30))
        assert plan.work_done(LinearSpeedup()) >= job.work - 1e-9

    def test_respects_cpu_cap_and_deadline(self):
        rng = np.random.default_rng(1)
        ci = rng.uniform(20, 500, size=30)
        job = MalleableJob(work=2000, max_cpus=3, arrival=95)
        plan = plan_carbon_scaling(job, trace(ci), deadline=hours(20))
        assert plan.peak_cpus <= 3
        assert plan.completion_minute <= hours(20)
        assert all(start >= 95 for start, _, _ in plan.allocation)

    def test_infeasible_raises(self):
        job = MalleableJob(work=10_000, max_cpus=1)
        with pytest.raises(SchedulingError):
            plan_carbon_scaling(job, trace([100] * 10), deadline=hours(3))

    def test_deadline_validation(self):
        job = MalleableJob(work=10, max_cpus=1, arrival=100)
        with pytest.raises(SchedulingError):
            plan_carbon_scaling(job, trace([100] * 10), deadline=50)
        with pytest.raises(SchedulingError):
            plan_carbon_scaling(job, trace([100] * 2), deadline=hours(10))

    def test_more_parallelism_never_hurts(self):
        rng = np.random.default_rng(2)
        ci = rng.uniform(20, 500, size=48)
        carbons = []
        for max_cpus in (1, 2, 4, 8):
            job = MalleableJob(work=1200, max_cpus=max_cpus)
            plan = plan_carbon_scaling(job, trace(ci), deadline=hours(48))
            carbons.append(plan.carbon_g)
        assert all(b <= a + 1e-9 for a, b in zip(carbons, carbons[1:]))

    def test_amdahl_saves_less_than_linear(self):
        rng = np.random.default_rng(3)
        ci = rng.uniform(20, 500, size=48)
        job = MalleableJob(work=1200, max_cpus=8)
        linear = plan_carbon_scaling(
            job, trace(ci), deadline=hours(48), speedup=LinearSpeedup()
        )
        amdahl = plan_carbon_scaling(
            job, trace(ci), deadline=hours(48), speedup=AmdahlSpeedup(0.8)
        )
        assert linear.carbon_g <= amdahl.carbon_g + 1e-9

    def test_beats_fixed_allocation(self):
        day = np.concatenate([np.full(12, 400.0), np.full(12, 50.0)])
        ci = np.tile(day, 3)
        job = MalleableJob(work=hours(10), max_cpus=4)
        scaled = plan_carbon_scaling(job, trace(ci), deadline=hours(48))
        fixed = fixed_allocation_plan(job, trace(ci), cpus=1)
        assert scaled.carbon_g < fixed.carbon_g


class TestFixedAllocation:
    def test_duration_and_carbon(self):
        job = MalleableJob(work=120, max_cpus=4, arrival=30)
        plan = fixed_allocation_plan(job, trace([100] * 10), cpus=2)
        assert plan.allocation == [(30, 90, 2)]
        assert plan.carbon_g == pytest.approx(100 * 0.02)

    def test_validation(self):
        job = MalleableJob(work=120, max_cpus=2)
        with pytest.raises(ConfigError):
            fixed_allocation_plan(job, trace([100] * 10), cpus=3)


class TestPlannerProperties:
    @given(
        ci=st.lists(st.floats(1.0, 1000.0), min_size=12, max_size=72),
        work=st.integers(10, 2000),
        max_cpus=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, ci, work, max_cpus):
        carbon = trace(ci)
        job = MalleableJob(work=work, max_cpus=max_cpus)
        deadline = carbon.horizon_minutes
        capacity = max_cpus * deadline
        if capacity < work:
            return  # infeasible draws are tested separately
        plan = plan_carbon_scaling(job, carbon, deadline=deadline)
        assert plan.work_done(LinearSpeedup()) >= work - 1e-6
        assert plan.peak_cpus <= max_cpus
        assert plan.completion_minute <= deadline
        # Carbon never exceeds running everything at the worst slot price.
        worst = max(ci) * 0.01 * (plan.cpu_minutes / 60)
        assert plan.carbon_g <= worst + 1e-6
