"""Reserved sweeps, knee finding, regime classification."""

import pytest

from repro.analysis.tradeoff import (
    SweepPoint,
    classify_regimes,
    knee_point,
    reserved_sweep,
)
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import ReproError
from repro.units import days, hours
from repro.workload.sampling import week_long_trace
from repro.workload.synthetic import alibaba_like

import numpy as np


def point(reserved, cost, carbon, util):
    return SweepPoint(
        reserved_cpus=reserved, cost=cost, carbon_kg=carbon,
        mean_wait_hours=1.0, normalized_cost=cost, normalized_carbon=carbon,
        reserved_utilization=util,
    )


class TestKnee:
    def test_minimum_cost(self):
        points = [point(0, 1.0, 0.8, 0), point(5, 0.7, 0.9, 0.9), point(10, 0.9, 1.0, 0.6)]
        assert knee_point(points).reserved_cpus == 5

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            knee_point([])


class TestRegimes:
    def test_three_regimes(self):
        points = [
            point(0, 1.0, 0.80, 0.0),     # anchor: 20% savings
            point(2, 0.9, 0.81, 0.95),    # retains >90% of savings
            point(5, 0.7, 0.90, 0.85),    # trade-off
            point(50, 1.4, 1.00, 0.2),    # below break-even utilization
        ]
        labels = classify_regimes(points, breakeven_utilization=0.4)
        assert labels == ["1-no-tradeoff", "1-no-tradeoff", "2-tradeoff", "3-excess"]

    def test_requires_zero_anchor(self):
        with pytest.raises(ReproError):
            classify_regimes([point(5, 1.0, 1.0, 0.5)], 0.4)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            classify_regimes([], 0.4)


class TestReservedSweepIntegration:
    @pytest.fixture(scope="class")
    def sweep(self):
        workload = week_long_trace(
            alibaba_like(4_000, horizon=days(30), seed=8), num_jobs=150
        )
        day = np.full(24, 300.0)
        day[9:16] = 60.0
        carbon = CarbonIntensityTrace(np.tile(day, 12), name="synthetic")
        mean = workload.mean_demand
        values = [0, int(mean / 2), int(mean), int(mean * 1.5)]
        return reserved_sweep(workload, carbon, "res-first:carbon-time", values)

    def test_normalized_to_nowait_zero(self, sweep):
        # The zero-reserved carbon-aware run must not cost more than ~the
        # all-on-demand NoWait baseline by more than the carbon shifting
        # overhead (same usage, same rates -> ratio ~1).
        assert sweep[0].normalized_cost == pytest.approx(1.0, abs=0.05)

    def test_carbon_monotone_rising(self, sweep):
        carbons = [p.normalized_carbon for p in sweep]
        assert carbons == sorted(carbons)

    def test_waiting_decreases(self, sweep):
        waits = [p.mean_wait_hours for p in sweep]
        assert waits[-1] < waits[0]

    def test_cost_dips_below_baseline(self, sweep):
        assert min(p.normalized_cost for p in sweep) < 1.0

    def test_empty_values_rejected(self):
        workload = week_long_trace(
            alibaba_like(2_000, horizon=days(14), seed=8), num_jobs=50
        )
        carbon = CarbonIntensityTrace(np.full(24 * 30, 100.0))
        with pytest.raises(ReproError):
            reserved_sweep(workload, carbon, "nowait", [])
