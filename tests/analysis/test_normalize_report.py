"""Normalization helpers and ASCII reporting."""

import pytest

from repro.analysis.normalize import normalize_to_baseline, normalize_to_max
from repro.analysis.report import format_value, render_kv, render_table
from repro.errors import ReproError


class TestNormalize:
    def test_to_max(self):
        normalized = normalize_to_max({"a": 2.0, "b": 4.0})
        assert normalized == {"a": 0.5, "b": 1.0}

    def test_to_max_empty(self):
        with pytest.raises(ReproError):
            normalize_to_max({})

    def test_to_max_nonpositive(self):
        with pytest.raises(ReproError):
            normalize_to_max({"a": 0.0})

    def test_to_baseline(self):
        assert normalize_to_baseline({"a": 3.0}, 2.0) == {"a": 1.5}

    def test_to_baseline_zero(self):
        with pytest.raises(ReproError):
            normalize_to_baseline({"a": 1.0}, 0.0)


class TestFormatValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (1.0, "1"),
            (0.5, "0.5"),
            (0.123456, "0.1235"),
            (12.345678, "12.346"),
            (1234567.0, "1,234,567"),
            ("text", "text"),
            (None, "None"),
            (float("nan"), "nan"),
            (True, "True"),
        ],
    )
    def test_rendering(self, value, expected):
        assert format_value(value) == expected


class TestRenderTable:
    def test_alignment_and_columns(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "bb", "value": 22.5}]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        assert len(lines) == 6

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        assert render_table(rows, columns=["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            render_table([])


class TestRenderKv:
    def test_alignment(self):
        text = render_kv({"x": 1, "long_key": 2.5}, title="K")
        assert text.startswith("K\n-")
        assert ": 1" in text

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            render_kv({})
