"""Derived trade-off metrics."""

import math

import pytest

from repro.analysis.metrics import (
    carbon_savings_fraction,
    cost_increase_fraction,
    mean_waiting_reduction,
    saved_carbon_per_waiting_hour,
    savings_cdf_by_length,
    savings_per_cost_percent,
)
from repro.cluster.pricing import DEFAULT_PRICING, PurchaseOption
from repro.errors import ReproError
from repro.simulator.results import JobRecord, SimulationResult, UsageInterval


def fake_result(carbon_g=1000.0, cost=10.0, waits=(60,)):
    records = []
    for i, wait in enumerate(waits):
        records.append(
            JobRecord(
                job_id=i, queue="q", arrival=0, length=60, cpus=1,
                first_start=wait, finish=wait + 60,
                carbon_g=carbon_g / len(waits), energy_kwh=0.01,
                usage_cost=cost if i == 0 else 0.0,
                baseline_carbon_g=carbon_g / len(waits),
                usage=(UsageInterval(wait, wait + 60, 1, PurchaseOption.ON_DEMAND),),
            )
        )
    return SimulationResult(
        policy_name="p", workload_name="w", region="r", reserved_cpus=0,
        horizon=1440, pricing=DEFAULT_PRICING, records=tuple(records),
    )


class TestFractions:
    def test_savings_fraction(self):
        base = fake_result(carbon_g=1000.0)
        better = fake_result(carbon_g=600.0)
        assert carbon_savings_fraction(better, base) == pytest.approx(0.4)

    def test_cost_increase(self):
        base = fake_result(cost=10.0)
        pricier = fake_result(cost=15.0)
        assert cost_increase_fraction(pricier, base) == pytest.approx(0.5)


class TestSavingsPerCostPercent:
    def test_normal_ratio(self):
        base = fake_result(carbon_g=1000.0, cost=10.0)
        other = fake_result(carbon_g=800.0, cost=11.0)  # -20% carbon, +10% cost
        assert savings_per_cost_percent(other, base) == pytest.approx(2.0)

    def test_free_savings_is_infinite(self):
        base = fake_result(carbon_g=1000.0, cost=10.0)
        other = fake_result(carbon_g=900.0, cost=9.0)
        assert math.isinf(savings_per_cost_percent(other, base))

    def test_no_savings_no_cost_is_zero(self):
        base = fake_result(carbon_g=1000.0, cost=10.0)
        other = fake_result(carbon_g=1000.0, cost=10.0)
        assert savings_per_cost_percent(other, base) == 0.0


class TestSavedPerWaitingHour:
    def test_ratio(self):
        base = fake_result(carbon_g=1000.0, waits=(0,))
        other = fake_result(carbon_g=880.0, waits=(120,))  # 2 h waiting
        assert saved_carbon_per_waiting_hour(other, base) == pytest.approx(60.0)

    def test_zero_wait_with_savings_is_infinite(self):
        base = fake_result(carbon_g=1000.0, waits=(0,))
        other = fake_result(carbon_g=900.0, waits=(0,))
        assert math.isinf(saved_carbon_per_waiting_hour(other, base))


class TestSavingsCdf:
    def _records(self):
        def rec(i, length, saving):
            return JobRecord(
                job_id=i, queue="q", arrival=0, length=length, cpus=1,
                first_start=0, finish=length, carbon_g=100.0 - saving,
                energy_kwh=0.01, usage_cost=0.0, baseline_carbon_g=100.0,
                usage=(UsageInterval(0, length, 1, PurchaseOption.ON_DEMAND),),
            )
        return [rec(0, 30, 10.0), rec(1, 120, 30.0), rec(2, 600, 60.0)]

    def test_cdf_monotone_to_one(self):
        cdf = savings_cdf_by_length(self._records(), [30, 120, 600])
        assert cdf == pytest.approx([0.1, 0.4, 1.0])

    def test_no_savings_rejected(self):
        records = self._records()
        zero = [
            JobRecord(
                job_id=r.job_id, queue="q", arrival=0, length=r.length, cpus=1,
                first_start=0, finish=r.length, carbon_g=100.0,
                energy_kwh=0.01, usage_cost=0.0, baseline_carbon_g=100.0,
                usage=r.usage,
            )
            for r in records
        ]
        with pytest.raises(ReproError):
            savings_cdf_by_length(zero, [30])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            savings_cdf_by_length([], [30])


class TestWaitingReduction:
    def test_reduction(self):
        slow = fake_result(waits=(120,))
        fast = fake_result(waits=(60,))
        assert mean_waiting_reduction(fast, slow) == pytest.approx(0.5)

    def test_zero_reference_rejected(self):
        base = fake_result(waits=(0,))
        with pytest.raises(ReproError):
            mean_waiting_reduction(base, base)
