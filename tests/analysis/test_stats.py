"""Seed replication and bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.stats import (
    PolicyComparison,
    bootstrap_ci,
    compare_policies,
    replicate,
)
from repro.errors import ReproError


class TestReplicate:
    def test_order_preserved(self):
        assert replicate(lambda seed: seed * 2.0, [3, 1, 2]) == [6.0, 2.0, 4.0]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            replicate(lambda seed: 0.0, [])


class TestBootstrapCi:
    def test_contains_true_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 1.0, size=60)
        low, high = bootstrap_ci(values, seed=1)
        assert low < 10.0 < high
        assert high - low < 1.5

    def test_tightens_with_samples(self):
        rng = np.random.default_rng(0)
        small = rng.normal(0, 1, size=10)
        large = rng.normal(0, 1, size=400)
        low_s, high_s = bootstrap_ci(small, seed=1)
        low_l, high_l = bootstrap_ci(large, seed=1)
        assert (high_l - low_l) < (high_s - low_s)

    def test_custom_statistic(self):
        values = [1.0, 2.0, 3.0, 4.0, 100.0]
        low, high = bootstrap_ci(values, statistic=np.median, seed=0)
        assert high <= 100.0
        assert low >= 1.0

    def test_deterministic(self):
        values = list(range(20))
        assert bootstrap_ci(values, seed=5) == bootstrap_ci(values, seed=5)

    def test_validation(self):
        with pytest.raises(ReproError):
            bootstrap_ci([1.0])
        with pytest.raises(ReproError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)


class TestComparePolicies:
    def test_clear_separation_significant(self):
        comparison = compare_policies(
            metric_a=lambda seed: 10.0 + (seed % 3) * 0.1,
            metric_b=lambda seed: 5.0 + (seed % 3) * 0.1,
            seeds=range(10),
        )
        assert comparison.mean_difference == pytest.approx(5.0)
        assert comparison.significant

    def test_identical_policies_not_significant(self):
        comparison = compare_policies(
            metric_a=lambda seed: float(np.random.default_rng(seed).normal()),
            metric_b=lambda seed: float(np.random.default_rng(seed + 1000).normal()),
            seeds=range(12),
        )
        assert isinstance(comparison, PolicyComparison)
        assert not comparison.significant

    def test_end_to_end_carbon_claim(self):
        """Carbon-Time saves carbon vs NoWait robustly across seeds."""
        from repro.carbon.regions import region_trace
        from repro.simulator.simulation import run_simulation
        from repro.units import days
        from repro.workload.sampling import week_long_trace
        from repro.workload.synthetic import alibaba_like

        carbon = region_trace("SA-AU")

        def saving_for(spec):
            def metric(seed: int) -> float:
                workload = week_long_trace(
                    alibaba_like(3_000, horizon=days(30), seed=seed), num_jobs=80,
                    seed=seed,
                )
                return run_simulation(workload, carbon, spec).total_carbon_kg

            return metric

        comparison = compare_policies(
            metric_a=saving_for("nowait"),
            metric_b=saving_for("carbon-time"),
            seeds=range(6),
            metric_name="carbon_kg",
        )
        # NoWait emits more than Carbon-Time on every seed.
        assert comparison.mean_difference > 0
        assert comparison.significant
