"""Stretch (slowdown) metrics and SLO-violation rates."""

import pytest

from repro.analysis.metrics import slo_violations, stretch_percentiles
from repro.cluster.pricing import DEFAULT_PRICING, PurchaseOption
from repro.errors import ReproError
from repro.simulator.results import JobRecord, SimulationResult, UsageInterval


def result_with(jobs):
    """jobs: list of (length, waiting) pairs."""
    records = []
    for i, (length, wait) in enumerate(jobs):
        records.append(
            JobRecord(
                job_id=i, queue="q", arrival=0, length=length, cpus=1,
                first_start=wait, finish=wait + length, carbon_g=1.0,
                energy_kwh=0.01, usage_cost=0.0, baseline_carbon_g=1.0,
                usage=(UsageInterval(wait, wait + length, 1,
                                     PurchaseOption.ON_DEMAND),),
            )
        )
    return SimulationResult(
        policy_name="p", workload_name="w", region="r", reserved_cpus=0,
        horizon=100_000, pricing=DEFAULT_PRICING, records=tuple(records),
    )


class TestStretchPercentiles:
    def test_no_waiting_is_stretch_one(self):
        result = result_with([(60, 0), (120, 0)])
        assert stretch_percentiles(result)[50] == pytest.approx(1.0)

    def test_short_jobs_stretch_most(self):
        # Same 60-minute wait: stretch 13 for a 5-min job, 1.5 for 2 h.
        result = result_with([(5, 60), (120, 60)])
        percentiles = stretch_percentiles(result, percentiles=(0, 100))
        assert percentiles[100] == pytest.approx(13.0)
        assert percentiles[0] == pytest.approx(1.5)

    def test_monotone(self):
        result = result_with([(5, 60), (60, 60), (120, 60), (600, 60)])
        percentiles = stretch_percentiles(result)
        assert percentiles[50] <= percentiles[90] <= percentiles[99]


class TestSloViolations:
    def test_counts_violators(self):
        result = result_with([(5, 60), (120, 60), (600, 0)])
        # Stretches: 13, 1.5, 1.0 -> one above 2.0.
        assert slo_violations(result, max_stretch=2.0) == pytest.approx(1 / 3)

    def test_all_satisfied(self):
        result = result_with([(60, 0)])
        assert slo_violations(result) == 0.0

    def test_unsatisfiable_threshold_rejected(self):
        result = result_with([(60, 0)])
        with pytest.raises(ReproError):
            slo_violations(result, max_stretch=0.5)

    def test_end_to_end_carbon_aware_violates_more(self):
        from repro.carbon.regions import region_trace
        from repro.simulator.simulation import run_simulation
        from repro.units import days
        from repro.workload.sampling import week_long_trace
        from repro.workload.synthetic import alibaba_like

        workload = week_long_trace(
            alibaba_like(4_000, horizon=days(30), seed=12), num_jobs=150
        )
        carbon = region_trace("SA-AU")
        nowait = run_simulation(workload, carbon, "nowait")
        aware = run_simulation(workload, carbon, "lowest-window")
        assert slo_violations(nowait, 2.0) == 0.0
        assert slo_violations(aware, 2.0) > 0.0
