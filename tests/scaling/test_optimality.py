"""Optimality properties of the greedy scaling planner.

Two independent oracles over random concave speedup curves:

* on small instances, exhaustive enumeration of every full-slot
  allocation (:func:`repro.scaling.reference.exhaustive_min_carbon`) --
  the greedy plan must never exceed the enumerated minimum by more than
  one cpu-minute of ceil rounding (and usually beats it, because greedy
  additionally trims its most expensive unit);
* on any instance, the linear-time exchange-argument certificate
  (:func:`repro.scaling.reference.verify_greedy_certificate`).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.energy import DEFAULT_ENERGY
from repro.errors import SchedulingError
from repro.scaling import (
    AmdahlSpeedup,
    LinearSpeedup,
    MalleableJob,
    exhaustive_min_carbon,
    fixed_allocation_plan,
    plan_carbon_scaling,
    verify_greedy_certificate,
)
from repro.units import MINUTES_PER_HOUR


@st.composite
def concave_speedups(draw):
    if draw(st.booleans()):
        return LinearSpeedup()
    return AmdahlSpeedup(draw(st.floats(min_value=0.5, max_value=1.0)))


@st.composite
def small_instances(draw):
    """Instances small enough for exhaustive search: <= 6 slots, <= 4 CPUs."""
    num_hours = draw(st.integers(min_value=2, max_value=6))
    hourly = [draw(st.floats(min_value=10.0, max_value=500.0)) for _ in range(num_hours)]
    carbon = CarbonIntensityTrace(np.array(hourly), name="opt")
    max_cpus = draw(st.integers(min_value=1, max_value=4))
    deadline = num_hours * MINUTES_PER_HOUR
    speedup = draw(concave_speedups())
    capacity = speedup.rate(max_cpus) * deadline
    work = float(draw(st.integers(min_value=10, max_value=int(capacity))))
    job = MalleableJob(work=work, max_cpus=max_cpus, arrival=0)
    return job, carbon, deadline, speedup


def _rounding_slack(carbon: CarbonIntensityTrace, deadline: int) -> float:
    hours = -(-deadline // MINUTES_PER_HOUR)
    max_ci = float(np.max(carbon.hourly[:hours]))
    return max_ci * DEFAULT_ENERGY.active_kw(1) / MINUTES_PER_HOUR


class TestGreedyVsExhaustive:
    @given(instance=small_instances())
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_greedy_never_exceeds_enumerated_minimum(self, instance):
        job, carbon, deadline, speedup = instance
        greedy = plan_carbon_scaling(job, carbon, deadline, speedup=speedup)
        best = exhaustive_min_carbon(job, carbon, deadline, speedup=speedup)
        slack = _rounding_slack(carbon, deadline) + 1e-9 * max(1.0, best)
        assert greedy.carbon_g <= best + slack, (
            f"greedy {greedy.carbon_g} vs exhaustive {best}"
        )

    @given(instance=small_instances())
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_certificate_is_clean(self, instance):
        job, carbon, deadline, speedup = instance
        greedy = plan_carbon_scaling(job, carbon, deadline, speedup=speedup)
        assert verify_greedy_certificate(greedy, carbon, speedup=speedup) == []

    @given(instance=small_instances())
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_greedy_never_loses_to_any_fixed_allocation(self, instance):
        job, carbon, deadline, speedup = instance
        slack = _rounding_slack(carbon, deadline)
        for cpus in range(1, job.max_cpus + 1):
            try:
                fixed = fixed_allocation_plan(job, carbon, cpus, speedup=speedup)
            except SchedulingError:
                continue  # this constant allocation runs past the trace
            if fixed.completion_minute > deadline:
                continue
            greedy = plan_carbon_scaling(job, carbon, deadline, speedup=speedup)
            assert greedy.carbon_g <= fixed.carbon_g + slack + 1e-9 * max(
                1.0, fixed.carbon_g
            )


class TestCertificateFalsifiability:
    def test_tampered_plan_fails_the_certificate(self):
        """Forcing work into the dirtiest slot must violate exchange."""
        hourly = np.array([50.0, 500.0, 50.0, 50.0])
        carbon = CarbonIntensityTrace(hourly, name="tamper")
        job = MalleableJob(work=120.0, max_cpus=2, arrival=0)
        plan = plan_carbon_scaling(job, carbon, deadline=240)
        assert verify_greedy_certificate(plan, carbon) == []
        # Move the whole job into the 500 g/kWh slot at the CPU cap.
        plan.allocation = [(60, 120, 2)]
        problems = verify_greedy_certificate(plan, carbon)
        assert any("exchange violation" in problem for problem in problems)

    def test_infeasible_plans_are_reported(self):
        carbon = CarbonIntensityTrace(np.full(4, 100.0), name="short")
        job = MalleableJob(work=180.0, max_cpus=2, arrival=0)
        plan = plan_carbon_scaling(job, carbon, deadline=240)
        assert len(plan.allocation) > 1
        plan.allocation = plan.allocation[:1]
        assert any(
            "work-minutes" in problem
            for problem in verify_greedy_certificate(plan, carbon)
        )

    def test_infeasible_instances_raise(self):
        carbon = CarbonIntensityTrace(np.full(2, 100.0), name="tiny")
        job = MalleableJob(work=500.0, max_cpus=2, arrival=0)
        with pytest.raises(SchedulingError):
            plan_carbon_scaling(job, carbon, deadline=120)
        with pytest.raises(SchedulingError):
            exhaustive_min_carbon(job, carbon, deadline=120)
