"""Golden scaling scenarios: pinned ``ScalingResult.digest()`` values.

Mirrors ``tests/faults/test_golden.py``: three deterministic planning
runs (greedy linear, greedy Amdahl, fixed baseline) have their digests
committed in ``golden/digests.json``.  Regenerate intentionally with::

    PYTHONPATH=src python -m tests.scaling.test_golden
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.scaling import AmdahlSpeedup, MalleableJob, ScalingSpec

GOLDEN_PATH = Path(__file__).parent / "golden" / "digests.json"


def _carbon() -> CarbonIntensityTrace:
    day = np.full(24, 200.0)
    day[9:15] = 35.0
    return CarbonIntensityTrace(np.tile(day, 3), name="golden-dip")


def _job() -> MalleableJob:
    return MalleableJob(work=400.0, max_cpus=4, arrival=45)


#: name -> zero-argument scenario runner (inputs rebuilt per call).
SCENARIOS = {
    "greedy-linear": lambda: ScalingSpec.build(_carbon(), _job(), deadline=1440).run(),
    "greedy-amdahl": lambda: ScalingSpec.build(
        _carbon(), _job(), deadline=1440, speedup=AmdahlSpeedup(0.85)
    ).run(),
    "fixed-two-cpus": lambda: ScalingSpec.build(
        _carbon(), _job(), deadline=1440, mode=("fixed", 2)
    ).run(),
}


def compute_digests() -> dict[str, str]:
    return {name: runner().digest() for name, runner in sorted(SCENARIOS.items())}


class TestGoldenScalingScenarios:
    @pytest.fixture(scope="class")
    def pinned(self) -> dict[str, str]:
        return json.loads(GOLDEN_PATH.read_text())

    def test_fixture_covers_exactly_the_scenarios(self, pinned):
        assert set(pinned) == set(SCENARIOS)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_digest_matches_pin(self, name, pinned):
        assert SCENARIOS[name]().digest() == pinned[name], (
            f"golden scaling scenario {name!r} moved; if intentional, "
            "regenerate with: PYTHONPATH=src python -m tests.scaling.test_golden"
        )


def _regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_digests(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover - fixture regeneration entry
    _regenerate()
