"""Backend conformance for scaling specs (mirrors the federated suite)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.scaling import AmdahlSpeedup, MalleableJob, ScalingResult, ScalingSpec
from repro.simulator.runner import (
    ResultCache,
    RunStats,
    available_backends,
    execution_count,
    run_many,
)


@pytest.fixture(params=sorted(available_backends()))
def backend(request):
    return request.param


@pytest.fixture(scope="module")
def carbon():
    day = np.full(24, 200.0)
    day[10:16] = 40.0
    return CarbonIntensityTrace(np.tile(day, 4), name="dipping")


def make_spec(carbon, work=240.0, deadline=720, speedup=None, mode=("greedy",)):
    return ScalingSpec.build(
        carbon,
        MalleableJob(work=work, max_cpus=4, arrival=30),
        deadline,
        speedup=speedup,
        mode=mode,
    )


def test_digests_match_direct_execution(backend, carbon):
    specs = [
        make_spec(carbon),
        make_spec(carbon, speedup=AmdahlSpeedup(0.9)),
        make_spec(carbon, mode=("fixed", 2)),
    ]
    results = run_many(specs, jobs=2, use_cache=False, backend=backend)
    assert all(isinstance(result, ScalingResult) for result in results)
    assert [result.digest() for result in results] == [
        spec.run().digest() for spec in specs
    ]


def test_in_batch_duplicates_execute_once(backend, carbon):
    stats = RunStats()
    results = run_many(
        [make_spec(carbon)] * 3, jobs=2, use_cache=False, stats=stats, backend=backend
    )
    assert stats.executed == 1
    assert stats.deduplicated == 2
    assert all(result is results[0] for result in results)


def test_warm_cache_executes_zero_engines(backend, carbon):
    specs = [make_spec(carbon, work=120.0 + 60.0 * index) for index in range(3)]
    cache = ResultCache()
    cold_stats, warm_stats = RunStats(), RunStats()
    run_many(specs, jobs=2, cache=cache, stats=cold_stats, backend=backend)
    executed_before = execution_count()
    warm = run_many(specs, jobs=2, cache=cache, stats=warm_stats, backend=backend)
    assert execution_count() == executed_before
    assert cold_stats.executed == len(specs)
    assert warm_stats.cache_hits == len(specs)
    assert warm_stats.executed == 0
    assert [result.digest() for result in warm] == [
        spec.run().digest() for spec in specs
    ]


def test_mixed_batches_with_simulation_specs(backend, carbon):
    """Scaling, federated, and plain specs ride one batch together."""
    from repro.federation import FederatedRegion, FederatedSpec
    from repro.simulator.runner import SimulationSpec
    from repro.workload.job import Job
    from repro.workload.trace import WorkloadTrace

    jobs = [Job(job_id=i, arrival=i * 30, length=60, cpus=1) for i in range(3)]
    workload = WorkloadTrace(jobs, name="mixed-batch")
    specs = [
        make_spec(carbon),
        SimulationSpec.build(workload, carbon, "nowait"),
        FederatedSpec.build(
            workload, [FederatedRegion("solo", carbon)], "home", "nowait"
        ),
    ]
    results = run_many(specs, jobs=2, use_cache=False, backend=backend)
    assert [result.digest() for result in results] == [
        spec.run().digest() for spec in specs
    ]
