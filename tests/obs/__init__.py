"""Observability layer: events, tracers, metrics, instrumentation, CLI."""
