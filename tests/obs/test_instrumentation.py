"""Engine and runner instrumentation: zero-overhead default, trace
invariants, and metrics aggregation across ``run_many``.

The load-bearing guarantee is the first class: attaching a tracer (or
none) must not change the simulated outcome -- digests are bit-identical
with observability off, on, and through the environment switch.
"""

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.obs.analyze import read_trace, summarize_trace
from repro.obs.events import event_from_dict
from repro.obs.tracer import CollectingTracer
from repro.simulator.runner import ResultCache, RunStats, SimulationSpec, run_many
from repro.simulator.simulation import run_simulation
from repro.units import days, hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace


def diurnal(days_count=4):
    day = np.full(24, 100.0)
    day[10:16] = 20.0
    return CarbonIntensityTrace(np.tile(day, days_count), name="diurnal")


def single_queue():
    return QueueSet((JobQueue(name="q", max_length=days(3), max_wait=hours(6)),))


def small_workload(num_jobs=8, name="obs-small"):
    jobs = [
        Job(job_id=i, arrival=i * 37, length=60 + 30 * (i % 3), cpus=1 + i % 2)
        for i in range(num_jobs)
    ]
    return WorkloadTrace(jobs, name=name, horizon=days(2))


def traced_run(policy="carbon-time", **kwargs):
    tracer = CollectingTracer()
    result = run_simulation(
        small_workload(), diurnal(), policy,
        queues=single_queue(), tracer=tracer, **kwargs,
    )
    return result, tracer


class TestZeroOverheadParity:
    def test_tracing_does_not_change_the_digest(self):
        plain = run_simulation(
            small_workload(), diurnal(), "carbon-time", queues=single_queue()
        )
        traced, tracer = traced_run()
        assert traced.digest() == plain.digest()
        assert tracer.events  # the traced run really did record something

    def test_env_tracing_does_not_change_the_digest(self, tmp_path, monkeypatch):
        plain = run_simulation(
            small_workload(), diurnal(), "nowait", queues=single_queue()
        )
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "run.jsonl"))
        traced = run_simulation(
            small_workload(), diurnal(), "nowait", queues=single_queue()
        )
        assert traced.digest() == plain.digest()

    def test_untraced_results_still_carry_metrics(self):
        result = run_simulation(
            small_workload(), diurnal(), "nowait", queues=single_queue()
        )
        assert result.metrics["counters"]["engine.jobs"] == len(result.records)


class TestEngineTrace:
    def test_run_meta_is_the_first_event(self):
        result, tracer = traced_run()
        meta = tracer.events[0]
        assert meta.type == "run_meta"
        assert meta.policy == result.policy_name
        assert meta.workload == result.workload_name

    def test_one_decision_and_finish_per_record(self):
        result, tracer = traced_run()
        decisions = tracer.by_type("policy_decision")
        assert len(decisions) == len(result.records)
        assert len(tracer.by_type("job_arrival")) == len(result.records)
        assert len(tracer.by_type("job_finish")) == len(result.records)
        assert all(d.policy == result.policy_name for d in decisions)

    def test_decisions_carry_carbon_inputs(self):
        _result, tracer = traced_run()
        for decision in tracer.by_type("policy_decision"):
            assert decision.arrival_ci_g_per_kwh in (100.0, 20.0)
            assert decision.start_ci_g_per_kwh in (100.0, 20.0)
            assert decision.start_time >= decision.time

    def test_interval_accounts_sum_to_the_result_totals(self):
        result, tracer = traced_run()
        intervals = tracer.by_type("interval_account")
        assert sum(i.carbon_g for i in intervals) == pytest.approx(
            result.total_carbon_g
        )
        assert sum(i.energy_kwh for i in intervals) == pytest.approx(
            result.total_energy_kwh
        )
        assert sum(i.cost_usd for i in intervals) == pytest.approx(
            result.metered_cost
        )

    def test_candidate_windows_are_emitted_for_window_policies(self):
        _result, tracer = traced_run("carbon-time")
        windows = tracer.by_type("candidate_window")
        assert windows
        assert all(w.latest >= w.time and w.num_candidates >= 1 for w in windows)

    def test_memo_hits_match_the_memoized_decision_flags(self):
        result, tracer = traced_run(memoize_decisions=True)
        memoized = [d for d in tracer.by_type("policy_decision") if d.memoized]
        counters = result.metrics["counters"]
        assert counters.get("engine.decision_memo_hits", 0.0) == len(memoized)

    def test_engine_metrics_snapshot_is_emitted_and_stored(self):
        result, tracer = traced_run()
        snapshots = tracer.by_type("metrics_snapshot")
        assert [s.scope for s in snapshots] == ["engine"]
        assert snapshots[0].metrics == result.metrics
        histogram = result.metrics["histograms"]["engine.job_waiting_minutes"]
        assert histogram["count"] == len(result.records)

    def test_all_events_round_trip_through_the_wire_form(self):
        _result, tracer = traced_run()
        for event in tracer.events:
            assert event_from_dict(event.to_dict()) == event


class TestEnvTraceFile:
    def test_trace_file_parses_and_matches_the_result(self, tmp_path, monkeypatch):
        path = tmp_path / "run.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        result = run_simulation(
            small_workload(), diurnal(), "carbon-time", queues=single_queue()
        )
        summary = summarize_trace(read_trace(str(path)))
        assert summary["decisions_by_policy"][result.policy_name]["total"] == (
            len(result.records)
        )
        assert summary["accounting"]["carbon_g"] == pytest.approx(
            result.total_carbon_g
        )


class TestRunnerMetrics:
    @pytest.fixture()
    def specs(self):
        workload = small_workload(name="obs-batch")
        carbon = diurnal()
        return [
            SimulationSpec.build(
                workload, carbon, policy, queues=single_queue(),
                reserved_cpus=reserved,
            )
            for policy, reserved in (("nowait", 0), ("carbon-time", 0), ("nowait", 0))
        ]

    def test_batch_metrics_count_work_once_per_distinct_result(self, specs):
        stats = RunStats()
        results = run_many(specs, jobs=1, use_cache=False, stats=stats)
        counters = stats.metrics["counters"]
        assert counters["runner.specs"] == 3.0
        assert counters["runner.executed"] == 2.0  # specs[2] deduplicated
        assert counters["runner.deduplicated"] == 1.0
        # Engine metrics merge once per distinct result, not per alias.
        distinct_jobs = sum(
            len(r.records) for r in {id(r): r for r in results}.values()
        )
        assert counters["engine.jobs"] == distinct_jobs
        assert stats.metrics["histograms"]["runner.worker_wall_seconds"]["count"] == 2

    def test_parallel_batch_reports_the_same_counters(self, specs):
        serial, parallel = RunStats(), RunStats()
        run_many(specs, jobs=1, use_cache=False, stats=serial)
        run_many(specs, jobs=4, use_cache=False, stats=parallel)
        assert parallel.metrics["counters"] == serial.metrics["counters"]
        assert parallel.metrics["gauges"]["runner.jobs"] == 4.0

    def test_cache_layer_deltas_appear_in_the_metrics(self, specs):
        cache = ResultCache()
        cold, warm = RunStats(), RunStats()
        run_many(specs, jobs=1, cache=cache, stats=cold)
        run_many(specs, jobs=1, cache=cache, stats=warm)
        assert cold.metrics["counters"]["cache.writes"] == 2.0
        assert warm.metrics["counters"]["cache.memory_hits"] == 3.0
        assert "cache.writes" not in warm.metrics["counters"]

    def test_sweep_events_bracket_the_batch(self, specs):
        tracer = CollectingTracer()
        run_many(specs, jobs=1, use_cache=False, tracer=tracer)
        assert tracer.events[0].type == "sweep_submitted"
        assert tracer.events[-1].type == "sweep_completed"
        submitted, completed = tracer.events[0], tracer.events[-1]
        assert submitted.total == completed.total == 3
        assert completed.executed == 2
        assert completed.wall_seconds >= 0.0
        scopes = [e.scope for e in tracer.by_type("metrics_snapshot")]
        assert scopes == ["runner"]
