"""Metrics registry and cross-snapshot aggregation semantics."""

from repro.obs.metrics import MetricsRegistry, aggregate_metrics, empty_snapshot


class TestRegistry:
    def test_counter_defaults_to_one_and_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        registry.counter("hits", 2.5)
        assert registry.snapshot()["counters"] == {"hits": 3.5}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("jobs", 4)
        registry.gauge("jobs", 2)
        assert registry.snapshot()["gauges"] == {"jobs": 2.0}

    def test_histogram_tracks_count_sum_and_bounds(self):
        registry = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            registry.histogram("wait", value)
        assert registry.snapshot()["histograms"]["wait"] == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
        }

    def test_snapshot_is_detached_from_the_registry(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        registry.histogram("wait", 1.0)
        snap = registry.snapshot()
        snap["counters"]["hits"] = 99.0
        snap["histograms"]["wait"]["sum"] = 99.0
        fresh = registry.snapshot()
        assert fresh["counters"]["hits"] == 1.0
        assert fresh["histograms"]["wait"]["sum"] == 1.0


class TestAggregation:
    def test_counters_sum_gauges_max_histograms_merge(self):
        a = {"counters": {"n": 1.0}, "gauges": {"peak": 2.0},
             "histograms": {"w": {"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0}}}
        b = {"counters": {"n": 2.0, "only_b": 1.0}, "gauges": {"peak": 5.0},
             "histograms": {"w": {"count": 1, "sum": 9.0, "min": 9.0, "max": 9.0}}}
        merged = aggregate_metrics([a, b])
        assert merged["counters"] == {"n": 3.0, "only_b": 1.0}
        assert merged["gauges"] == {"peak": 5.0}
        assert merged["histograms"]["w"] == {
            "count": 3, "sum": 12.0, "min": 1.0, "max": 9.0,
        }

    def test_empty_and_partial_snapshots_are_tolerated(self):
        partial = {"counters": {"n": 1.0}}  # no gauges/histograms sections
        merged = aggregate_metrics([{}, empty_snapshot(), partial])
        assert merged["counters"] == {"n": 1.0}
        assert merged["gauges"] == {}
        assert merged["histograms"] == {}

    def test_no_snapshots_yields_the_empty_snapshot(self):
        assert aggregate_metrics([]) == empty_snapshot()

    def test_inputs_are_not_mutated(self):
        a = {"histograms": {"w": {"count": 1, "sum": 1.0, "min": 1.0, "max": 1.0}}}
        aggregate_metrics([a, a])
        assert a["histograms"]["w"]["count"] == 1
