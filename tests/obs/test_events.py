"""Event schema: wire round-trip, strict parsing, registry completeness."""

import dataclasses
import json

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    BackendClosed,
    BackendOpened,
    CampaignCompleted,
    CampaignCreated,
    CampaignResumed,
    CandidateWindow,
    Event,
    FederationCompleted,
    FederationRouted,
    IntervalAccount,
    JobArrival,
    JobEvict,
    JobFinish,
    JobStart,
    MetricsSnapshot,
    PolicyDecision,
    PoolRespawned,
    RunMeta,
    ScalingPlanned,
    ServiceClockAdvanced,
    ServiceDrained,
    ServiceJobAdmitted,
    ServiceJobCancelled,
    ServiceJobRejected,
    ServiceStarted,
    ServiceStopped,
    SpecFailed,
    SpecRetried,
    SweepCompleted,
    SweepSubmitted,
    event_from_dict,
)

#: One representative instance per registered event type.
SAMPLES = [
    RunMeta(policy="carbon-time", workload="tiny", region="SA-AU",
            reserved_cpus=4, horizon=2880),
    JobArrival(time=30, job_id=1, queue="short", cpus=2, length=240),
    PolicyDecision(time=30, job_id=1, policy="carbon-time", start_time=90,
                   use_spot=False, reserved_pickup=False, num_segments=0,
                   memoized=False, arrival_ci_g_per_kwh=100.0,
                   start_ci_g_per_kwh=20.0, start_price_usd_per_mwh=None),
    CandidateWindow(time=30, latest=390, num_candidates=73, hold_minutes=240),
    JobStart(time=90, job_id=1, option="on_demand", duration=240, attempt=0),
    JobEvict(time=150, job_id=1, lost_cpu_minutes=120.0, preserved_minutes=0,
             evictions=1),
    JobFinish(time=330, job_id=1, waiting_minutes=60, evictions=0),
    IntervalAccount(job_id=1, start=90, end=330, cpus=2, option="on_demand",
                    carbon_g=12.5, energy_kwh=0.4, cost_usd=0.19),
    MetricsSnapshot(scope="engine", metrics={"counters": {"engine.jobs": 5.0}}),
    SweepSubmitted(total=4, executed=2, cache_hits=1, deduplicated=1, jobs=4),
    SweepCompleted(total=4, executed=2, cache_hits=1, deduplicated=1, jobs=4,
                   wall_seconds=0.25),
    SpecRetried(index=3, digest_prefix="a1b2c3d4e5f6", attempt=1,
                error_type="WorkerCrash", delay_seconds=0.07),
    SpecFailed(index=3, digest_prefix="a1b2c3d4e5f6", error_type="TimeoutError",
               message="execution exceeded 2s", attempts=2),
    PoolRespawned(reason="broken", respawns=1),
    BackendOpened(backend="workqueue", workers=4),
    BackendClosed(backend="workqueue", executed=16, respawns=2),
    CampaignCreated(name="sweep-fig8", total=96, distinct=48),
    CampaignResumed(name="sweep-fig8", completed=20, remaining=28),
    CampaignCompleted(name="sweep-fig8", executed=28, failed=0, remaining=0),
    FederationRouted(selector="greedy-spatial", home="SA-AU", regions=3, jobs=12,
                     migrated=7, migration_minutes=90),
    FederationCompleted(selector="greedy-spatial", policy="carbon-time",
                        regions=3, jobs=12, migrated=7, carbon_kg=4.2,
                        cost_usd=1.37),
    ScalingPlanned(speedup="amdahl:0.9", mode="greedy", work=240.0, deadline=720,
                   peak_cpus=4, cpu_minutes=276.0, carbon_g=31.5,
                   energy_kwh=0.46),
    ServiceStarted(policy="carbon-time", region="SA-AU", reserved_cpus=4,
                   max_pending=64, horizon=10080),
    ServiceJobAdmitted(time=30, job_id=1, queue="short", cpus=2, length=240),
    ServiceJobRejected(time=30, job_id=-1, reason="queue_full", status=503),
    ServiceJobCancelled(time=45, job_id=2),
    ServiceClockAdvanced(time=1440, from_time=30, pending=3),
    ServiceDrained(time=5460, jobs=12, carbon_g=6.73, cost_usd=0.28,
                   digest="66a44fa35132045a"),
    ServiceStopped(jobs_submitted=12, jobs_rejected=1, drained=True),
]


class TestRegistry:
    def test_every_sample_type_is_registered(self):
        assert {type(sample) for sample in SAMPLES} == set(EVENT_TYPES.values())

    def test_registry_keys_match_class_discriminators(self):
        for name, event_class in EVENT_TYPES.items():
            assert event_class.type == name

    def test_all_events_are_frozen_dataclasses(self):
        for event_class in EVENT_TYPES.values():
            assert dataclasses.is_dataclass(event_class)
            assert issubclass(event_class, Event)


class TestWireRoundTrip:
    @pytest.mark.parametrize("sample", SAMPLES, ids=lambda s: s.type)
    def test_to_dict_from_dict_round_trips(self, sample):
        assert event_from_dict(sample.to_dict()) == sample

    @pytest.mark.parametrize("sample", SAMPLES, ids=lambda s: s.type)
    def test_wire_form_is_json_serializable(self, sample):
        wire = sample.to_dict()
        assert wire["type"] == sample.type
        assert event_from_dict(json.loads(json.dumps(wire))) == sample


class TestStrictParsing:
    def test_unknown_type_raises_key_error(self):
        with pytest.raises(KeyError):
            event_from_dict({"type": "never_heard_of_it"})

    def test_missing_field_raises_type_error(self):
        wire = SAMPLES[1].to_dict()
        del wire["job_id"]
        with pytest.raises(TypeError):
            event_from_dict(wire)

    def test_unexpected_field_raises_type_error(self):
        wire = SAMPLES[1].to_dict()
        wire["surprise"] = 1
        with pytest.raises(TypeError):
            event_from_dict(wire)

    def test_input_dict_is_not_mutated(self):
        wire = SAMPLES[0].to_dict()
        event_from_dict(wire)
        assert "type" in wire
