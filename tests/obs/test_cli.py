"""``python -m repro.obs``: summarize, diff (exit codes), schema, errors."""

import json

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.obs.cli import main
from repro.obs.tracer import JsonlTracer
from repro.simulator.simulation import run_simulation
from repro.units import days, hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace


def _trace_file(tmp_path, name, policy):
    day = np.full(24, 100.0)
    day[10:16] = 20.0
    carbon = CarbonIntensityTrace(np.tile(day, 3), name="diurnal")
    jobs = [Job(job_id=i, arrival=i * 45, length=60, cpus=1) for i in range(4)]
    workload = WorkloadTrace(jobs, name="cli-tiny", horizon=days(1))
    queues = QueueSet((JobQueue(name="q", max_length=days(3), max_wait=hours(6)),))
    path = tmp_path / name
    with JsonlTracer(str(path)) as tracer:
        run_simulation(workload, carbon, policy, queues=queues, tracer=tracer)
    return str(path)


@pytest.fixture()
def trace_a(tmp_path):
    return _trace_file(tmp_path, "a.jsonl", "nowait")


@pytest.fixture()
def trace_b(tmp_path):
    return _trace_file(tmp_path, "b.jsonl", "carbon-time")


class TestSummarize:
    def test_text_output_names_the_policy(self, trace_a, capsys):
        assert main(["summarize", trace_a]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "NoWait" in out

    def test_json_output_counts_decisions(self, trace_b, capsys):
        assert main(["summarize", trace_b, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["decisions_by_policy"]["Carbon-Time"]["total"] == 4
        assert summary["by_type"]["run_meta"] == 1
        assert summary["metrics"]["counters"]["engine.jobs"] == 4.0


class TestDiff:
    def test_identical_traces_exit_zero(self, trace_a, capsys):
        assert main(["diff", trace_a, trace_a]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_traces_exit_one(self, trace_a, trace_b, capsys):
        assert main(["diff", trace_a, trace_b]) == 1
        assert "first divergence" in capsys.readouterr().out

    def test_json_diff_reports_the_divergence_index(self, trace_a, trace_b, capsys):
        assert main(["diff", trace_a, trace_b, "--json"]) == 1
        diff = json.loads(capsys.readouterr().out)
        assert diff["identical"] is False
        assert diff["first_divergence"]["index"] == 0  # run_meta names the policy


class TestSchema:
    def test_lists_every_event_type(self, capsys):
        assert main(["schema"]) == 0
        out = capsys.readouterr().out
        for name in ("run_meta", "policy_decision", "interval_account",
                     "sweep_completed"):
            assert name in out

    def test_json_schema_orders_fields(self, capsys):
        assert main(["schema", "--json"]) == 0
        schema = json.loads(capsys.readouterr().out)
        assert schema["job_start"] == ["time", "job_id", "option", "duration",
                                       "attempt"]


class TestErrors:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_jsonl_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "run_meta"}\nnot json\n')
        assert main(["summarize", str(bad)]) == 2
        assert "bad.jsonl:2" in capsys.readouterr().err

    def test_non_event_line_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('["a", "list"]\n')
        assert main(["summarize", str(bad)]) == 2
        assert "not an event object" in capsys.readouterr().err
