"""Tracer implementations and environment-driven selection."""

import io
import json

from repro.obs.events import JobArrival, event_from_dict
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    tracer_from_env,
)

EVENT = JobArrival(time=0, job_id=7, queue="short", cpus=1, length=60)


class TestNullTracer:
    def test_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_emit_and_close_are_noops(self):
        NULL_TRACER.emit(EVENT)
        NULL_TRACER.close()

    def test_singleton_is_a_null_tracer(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestCollectingTracer:
    def test_collects_in_order(self):
        tracer = CollectingTracer()
        second = JobArrival(time=5, job_id=8, queue="long", cpus=2, length=90)
        tracer.emit(EVENT)
        tracer.emit(second)
        assert tracer.events == [EVENT, second]

    def test_by_type_filters(self):
        tracer = CollectingTracer()
        tracer.emit(EVENT)
        assert tracer.by_type("job_arrival") == [EVENT]
        assert tracer.by_type("job_finish") == []

    def test_enabled(self):
        assert CollectingTracer().enabled is True


class TestJsonlTracer:
    def test_path_destination_is_lazy_and_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(str(path))
        assert not path.exists()  # nothing opened until the first emit
        tracer.emit(EVENT)
        tracer.close()
        with JsonlTracer(str(path)) as again:
            again.emit(EVENT)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(event_from_dict(json.loads(line)) == EVENT for line in lines)

    def test_emitted_counter(self, tmp_path):
        with JsonlTracer(str(tmp_path / "t.jsonl")) as tracer:
            tracer.emit(EVENT)
            tracer.emit(EVENT)
            assert tracer.emitted == 2

    def test_stream_destination_is_not_closed(self):
        stream = io.StringIO()
        tracer = JsonlTracer(stream)
        tracer.emit(EVENT)
        tracer.close()
        assert not stream.closed
        assert json.loads(stream.getvalue()) == EVENT.to_dict()

    def test_close_is_idempotent(self, tmp_path):
        tracer = JsonlTracer(str(tmp_path / "t.jsonl"))
        tracer.emit(EVENT)
        tracer.close()
        tracer.close()


class TestTracerFromEnv:
    def test_unset_empty_and_zero_disable(self):
        assert tracer_from_env({}) is NULL_TRACER
        assert tracer_from_env({"REPRO_TRACE": ""}) is NULL_TRACER
        assert tracer_from_env({"REPRO_TRACE": "0"}) is NULL_TRACER

    def test_one_enables_with_default_destination(self):
        tracer = tracer_from_env({"REPRO_TRACE": "1"})
        assert isinstance(tracer, JsonlTracer)
        assert tracer._path == "repro-trace.jsonl"

    def test_value_is_taken_as_a_path(self):
        tracer = tracer_from_env({"REPRO_TRACE": "/tmp/run-a.jsonl"})
        assert isinstance(tracer, JsonlTracer)
        assert tracer._path == "/tmp/run-a.jsonl"

    def test_trace_file_overrides_destination(self):
        tracer = tracer_from_env(
            {"REPRO_TRACE": "1", "REPRO_TRACE_FILE": "/tmp/elsewhere.jsonl"}
        )
        assert isinstance(tracer, JsonlTracer)
        assert tracer._path == "/tmp/elsewhere.jsonl"
