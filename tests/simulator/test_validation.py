"""Post-hoc result verification."""

import pytest

from repro.carbon.regions import region_trace
from repro.cluster.pricing import DEFAULT_PRICING, PurchaseOption
from repro.cluster.spot import HourlyHazard
from repro.errors import SimulationError
from repro.simulator.results import JobRecord, SimulationResult, UsageInterval
from repro.simulator.simulation import run_simulation
from repro.simulator.validation import assert_valid, verify_result
from repro.units import days
from repro.workload.job import default_queue_set
from repro.workload.sampling import week_long_trace
from repro.workload.synthetic import alibaba_like


def make_record(**overrides):
    base = dict(
        job_id=0, queue="short", arrival=0, length=60, cpus=1,
        first_start=0, finish=60, carbon_g=1.0, energy_kwh=0.01,
        usage_cost=0.0624, baseline_carbon_g=1.0,
        usage=(UsageInterval(0, 60, 1, PurchaseOption.ON_DEMAND),),
    )
    base.update(overrides)
    return JobRecord(**base)


def make_result(records, reserved=0):
    return SimulationResult(
        policy_name="p", workload_name="w", region="r",
        reserved_cpus=reserved, horizon=1440, pricing=DEFAULT_PRICING,
        records=tuple(records),
    )


class TestVerifyResult:
    def test_clean_result_passes(self):
        assert verify_result(make_result([make_record()])) == []

    def test_real_simulations_pass(self):
        workload = week_long_trace(
            alibaba_like(4_000, horizon=days(30), seed=11), num_jobs=150
        )
        carbon = region_trace("SA-AU")
        queues = default_queue_set()
        for spec in ("nowait", "wait-awhile", "res-first:carbon-time",
                     "spot-res:carbon-time"):
            result = run_simulation(
                workload, carbon, spec, reserved_cpus=6,
                eviction_model=HourlyHazard(0.05),
            )
            assert verify_result(result, queues=queues) == [], spec

    def test_detects_occupancy_mismatch(self):
        bad = make_record(
            usage=(UsageInterval(0, 45, 1, PurchaseOption.ON_DEMAND),),
            finish=60, length=60,
        )
        violations = verify_result(make_result([bad]))
        assert any("occupancy" in violation for violation in violations)

    def test_detects_finish_mismatch(self):
        bad = make_record(
            usage=(UsageInterval(0, 60, 1, PurchaseOption.ON_DEMAND),),
            finish=90, length=60,
        )
        violations = verify_result(make_result([bad]))
        assert any("finish" in violation for violation in violations)

    def test_detects_eviction_without_spot(self):
        bad = make_record(evictions=1)
        violations = verify_result(make_result([bad]))
        assert any("eviction" in violation for violation in violations)

    def test_detects_oversubscribed_reserved(self):
        records = [
            make_record(
                job_id=i,
                usage=(UsageInterval(0, 60, 1, PurchaseOption.RESERVED),),
            )
            for i in range(3)
        ]
        violations = verify_result(make_result(records, reserved=2))
        assert any("oversubscribed" in violation for violation in violations)

    def test_waiting_bound_with_queues(self):
        bad = make_record(first_start=1440, finish=1500)  # waited 24 h in "short"
        violations = verify_result(
            make_result([bad]), queues=default_queue_set()
        )
        assert any("exceeds bound" in violation for violation in violations)

    def test_assert_valid_raises(self):
        bad = make_record(
            usage=(UsageInterval(0, 45, 1, PurchaseOption.ON_DEMAND),),
            finish=60,
        )
        with pytest.raises(SimulationError):
            assert_valid(make_result([bad]))

    def test_assert_valid_clean(self):
        assert_valid(make_result([make_record()]))
