"""Digest parity between the engine's array fast path and the scalar path.

The fast path (``Engine(fast_path=True)``, the default) precomputes
decisions through the policies' batched ``decide_many`` hooks and drains
events through the merged arrival feed; the legacy path walks the same
scenario one ``decide()`` and one heap push at a time.  The two must be
*bit-identical*: these tests pin ``SimulationResult.digest()`` equality
for the full policy pool on two pinned scenarios, and hold the batched
candidate-window scoring against an independent scalar oracle with
hypothesis.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CheckpointConfig,
    HourlyHazard,
    alibaba_like,
    region_trace,
    run_simulation,
    week_long_trace,
)
from repro.carbon import correlated_price_trace
from repro.carbon.trace import CarbonIntensityTrace
from repro.difftest.scenarios import POLICY_POOL
from repro.obs.tracer import NULL_TRACER
from repro.policies.base import SchedulingContext
from repro.policies.scoring import (
    candidate_batch,
    segment_first_where,
    segment_max,
    segment_min,
)
from repro.units import days


@pytest.fixture(scope="module")
def workload():
    return week_long_trace(alibaba_like(4_000, horizon=days(30), seed=13), num_jobs=150)


@pytest.fixture(scope="module")
def carbon_trace():
    return region_trace("ON-CA")


#: Two pinned scenarios: a deterministic reserved-pool run where the
#: perfect forecaster makes the batched scoring path live, and a
#: stochastic spot run (noisy forecaster, so decide_many falls back to
#: the scalar hooks) that exercises the merged event feed under
#: evictions, checkpointing, retries, and boot overhead.
PINNED_SCENARIOS: dict[str, dict] = {
    "reserved-perfect": dict(reserved_cpus=16, granularity=5),
    "spot-noisy": dict(
        reserved_cpus=6,
        eviction_model=HourlyHazard(0.12),
        checkpointing=CheckpointConfig(interval=30, overhead=2),
        retry_spot=True,
        forecast_sigma=0.08,
        forecast_seed=11,
        spot_seed=3,
        granularity=15,
        instance_overhead_minutes=2,
    ),
}


@pytest.mark.parametrize("scenario", sorted(PINNED_SCENARIOS))
@pytest.mark.parametrize("policy", POLICY_POOL)
def test_fast_path_digest_parity(workload, carbon_trace, policy, scenario):
    kwargs = PINNED_SCENARIOS[scenario]
    fast = run_simulation(workload, carbon_trace, policy, **kwargs)
    legacy = run_simulation(workload, carbon_trace, policy, fast_path=False, **kwargs)
    assert fast.digest() == legacy.digest()


@pytest.mark.parametrize("policy", ["price-aware", "carbon-price"])
def test_fast_path_digest_parity_price_policies(workload, carbon_trace, policy):
    price = correlated_price_trace(carbon_trace, seed=5)
    kwargs = dict(reserved_cpus=8, price_trace=price, granularity=5)
    fast = run_simulation(workload, carbon_trace, policy, **kwargs)
    legacy = run_simulation(workload, carbon_trace, policy, fast_path=False, **kwargs)
    assert fast.digest() == legacy.digest()


# ----------------------------------------------------------------------
# Batched scoring vs an independent scalar oracle (hypothesis)
# ----------------------------------------------------------------------
def _scalar_starts(arrival: int, max_wait: int, hold: int, horizon: int,
                   granularity: int) -> np.ndarray:
    """The real scalar grid, via the untouched candidate_starts method."""
    ctx = SimpleNamespace(
        carbon_horizon=horizon, granularity=granularity, tracer=NULL_TRACER
    )
    return SchedulingContext.candidate_starts(ctx, arrival, max_wait, hold)


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_batched_window_scoring_matches_scalar(data):
    horizon = 3_000
    hold = data.draw(st.integers(1, 900), label="hold")
    max_wait = data.draw(st.integers(0, 1_200), label="max_wait")
    granularity = data.draw(st.sampled_from([1, 5, 15, 30]), label="granularity")
    num_jobs = data.draw(st.integers(1, 8), label="num_jobs")
    arrivals = np.sort(
        np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, horizon - hold),
                    min_size=num_jobs,
                    max_size=num_jobs,
                ),
                label="arrivals",
            ),
            dtype=np.int64,
        )
    )
    view_seed = data.draw(st.integers(0, 2**31 - 1), label="view_seed")
    # Stand-in for window_sums(hold): one score per feasible start minute.
    view = np.random.default_rng(view_seed).uniform(0.0, 500.0, horizon - hold + 1)

    batch = candidate_batch(arrivals, max_wait, hold, horizon, granularity)
    chosen = arrivals.copy()
    if batch.index.size:
        footprints = view[batch.starts]
        tolerance = 1e-9 * np.maximum(1.0, segment_max(footprints, batch))
        within = footprints <= batch.expand(segment_min(footprints, batch) + tolerance)
        best = segment_first_where(within, batch)
        chosen[batch.index] = batch.starts[best]

    for i, arrival in enumerate(arrivals.tolist()):
        starts = _scalar_starts(arrival, max_wait, hold, horizon, granularity)
        assert bool(batch.single[i]) == (starts.size == 1)
        if starts.size == 1:
            expected = int(starts[0])
        else:
            footprints = view[starts]
            tolerance = 1e-9 * max(1.0, float(np.max(footprints)))
            first = int(np.flatnonzero(footprints <= footprints.min() + tolerance)[0])
            expected = int(starts[first])
        assert int(chosen[i]) == expected

    # The flat grids themselves must match the scalar grids exactly.
    if batch.index.size:
        flat = np.concatenate(
            [
                _scalar_starts(int(arrivals[i]), max_wait, hold, horizon, granularity)
                for i in batch.index.tolist()
            ]
        )
        np.testing.assert_array_equal(batch.starts, flat)


@given(
    seed=st.integers(0, 2**31 - 1),
    num_hours=st.integers(2, 72),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_window_sums_matches_integrate_many_bitwise(seed, num_hours, data):
    hourly = np.random.default_rng(seed).uniform(10.0, 900.0, num_hours)
    trace = CarbonIntensityTrace(hourly, name="fuzz")
    duration = data.draw(
        st.integers(1, trace.horizon_minutes), label="duration"
    )
    sums = trace.window_sums(duration)
    starts = np.arange(sums.size, dtype=np.int64)
    expected = trace.integrate_many(starts, duration)
    # Bitwise equality, not allclose: both sides are the same
    # cum[s + d] - cum[s] over the same prefix sum.
    np.testing.assert_array_equal(sums, expected)
