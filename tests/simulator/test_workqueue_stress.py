"""Concurrency stress tests for the workqueue backend's shared cache.

Satellite 3: two workqueue sweeps racing on the same disk cache
directory must coordinate through the per-key lock protocol -- each
distinct spec executes exactly once *globally* (the engine-run trace is
the cross-process oracle), torn cache entries are re-executed rather
than served, and a lock file abandoned by a dead process is stolen
instead of deadlocking the sweep.
"""

from __future__ import annotations

import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.simulator.runner import (
    ResultCache,
    RunStats,
    SimulationSpec,
    run_many,
)
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

DISTINCT = 6


@pytest.fixture(scope="module")
def carbon():
    return CarbonIntensityTrace(np.linspace(90.0, 310.0, 48), name="ramp")


@pytest.fixture(scope="module")
def workload():
    jobs = [Job(job_id=i, arrival=i * 45, length=90, cpus=1) for i in range(4)]
    return WorkloadTrace(jobs, name="workqueue-stress")


def make_specs(workload, carbon):
    return [
        SimulationSpec.build(workload, carbon, "nowait", spot_seed=seed)
        for seed in range(DISTINCT)
    ]


def test_racing_sweeps_never_double_execute(
    tmp_path, workload, carbon, monkeypatch
):
    """Two sweeps, two workers each, one shared disk cache: the trace
    must record exactly DISTINCT engine runs -- the per-key lock lets
    the loser of each race read the winner's published result."""
    specs = make_specs(workload, carbon)
    trace_path = tmp_path / "trace.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(trace_path))
    cache_dir = tmp_path / "shared-cache"

    outcomes: dict[str, list] = {}

    def sweep(label: str) -> None:
        results = run_many(
            specs,
            jobs=2,
            cache=ResultCache(disk_dir=cache_dir),
            stats=RunStats(),
            backend="workqueue",
            on_error="partial",
        )
        outcomes[label] = results

    threads = [
        threading.Thread(target=sweep, args=(label,)) for label in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive()

    for label in ("a", "b"):
        assert all(result is not None for result in outcomes[label])
    digests_a = [result.digest() for result in outcomes["a"]]
    digests_b = [result.digest() for result in outcomes["b"]]
    assert digests_a == digests_b

    engine_runs = trace_path.read_text().count('"type": "run_meta"')
    assert engine_runs == DISTINCT


def test_torn_cache_entry_is_reexecuted_and_overwritten(
    tmp_path, workload, carbon
):
    spec = make_specs(workload, carbon)[0]
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    key = ResultCache(disk_dir=cache_dir).key_for(spec)
    (cache_dir / f"{key}.pkl").write_bytes(b"\x80\x67 torn entry")

    results = run_many(
        [spec], jobs=2, cache=ResultCache(disk_dir=cache_dir), backend="workqueue"
    )
    assert results[0].digest() == spec.run().digest()

    healed = ResultCache(disk_dir=cache_dir).get(key)
    assert healed is not None
    assert healed.digest() == results[0].digest()


def test_lock_abandoned_by_dead_process_is_stolen(tmp_path, workload, carbon):
    """A crash between lock acquisition and release must not wedge every
    future sweep: waiters probe the holder pid and steal dead locks."""
    spec = make_specs(workload, carbon)[0]
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    cache = ResultCache(disk_dir=cache_dir)
    key = cache.key_for(spec)

    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    dead_pid = int(probe.stdout.strip())
    (cache_dir / f"{key}.lock").write_text(f"{dead_pid}\n")

    results = run_many(
        [spec], jobs=2, cache=ResultCache(disk_dir=cache_dir), backend="workqueue"
    )
    assert results[0].digest() == spec.run().digest()
    assert not (cache_dir / f"{key}.lock").exists()
