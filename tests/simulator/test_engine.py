"""Engine semantics: work-conserving pickup, spot evictions, segments."""

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.pricing import PurchaseOption
from repro.cluster.spot import HourlyHazard, NoEvictions
from repro.errors import ConfigError
from repro.simulator.simulation import run_simulation
from repro.units import days, hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace


def flat(hours_count=24 * 12, value=100.0):
    return CarbonIntensityTrace(np.full(hours_count, value), name="flat")


def single_queue(max_wait=hours(6)):
    return QueueSet((JobQueue(name="q", max_length=days(3), max_wait=max_wait),))


def record_of(result, job_id):
    return next(r for r in result.records if r.job_id == job_id)


class TestNoWaitExecution:
    def test_runs_at_arrival(self):
        workload = WorkloadTrace([Job(job_id=0, arrival=42, length=60, cpus=1)])
        result = run_simulation(workload, flat(), "nowait", queues=single_queue())
        record = result.records[0]
        assert record.first_start == 42
        assert record.finish == 102
        assert record.waiting_time == 0
        assert record.completion_time == 60

    def test_on_demand_when_no_reserved(self):
        workload = WorkloadTrace([Job(job_id=0, arrival=0, length=60, cpus=1)])
        result = run_simulation(workload, flat(), "nowait", queues=single_queue())
        assert record_of(result, 0).options_used == (PurchaseOption.ON_DEMAND,)

    def test_reserved_preferred_when_free(self):
        workload = WorkloadTrace([Job(job_id=0, arrival=0, length=60, cpus=1)])
        result = run_simulation(
            workload, flat(), "nowait", reserved_cpus=1, queues=single_queue()
        )
        assert record_of(result, 0).options_used == (PurchaseOption.RESERVED,)

    def test_overflow_to_on_demand(self):
        jobs = [
            Job(job_id=0, arrival=0, length=120, cpus=1),
            Job(job_id=1, arrival=10, length=60, cpus=1),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "nowait", reserved_cpus=1, queues=single_queue()
        )
        assert record_of(result, 0).options_used == (PurchaseOption.RESERVED,)
        assert record_of(result, 1).options_used == (PurchaseOption.ON_DEMAND,)

    def test_multi_cpu_job_needs_full_fit(self):
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=4)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "nowait", reserved_cpus=2, queues=single_queue()
        )
        assert record_of(result, 0).options_used == (PurchaseOption.ON_DEMAND,)


class TestWorkConservingPickup:
    def test_allwait_starts_when_reserved_frees(self):
        jobs = [
            Job(job_id=0, arrival=0, length=120, cpus=1),
            Job(job_id=1, arrival=10, length=60, cpus=1),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "allwait-threshold",
            reserved_cpus=1, queues=single_queue(),
        )
        second = record_of(result, 1)
        assert second.first_start == 120  # picked up the freed instance
        assert second.options_used == (PurchaseOption.RESERVED,)

    def test_allwait_falls_back_to_on_demand_at_w(self):
        jobs = [
            Job(job_id=0, arrival=0, length=hours(20), cpus=1),
            Job(job_id=1, arrival=0, length=60, cpus=1),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "allwait-threshold",
            reserved_cpus=1, queues=single_queue(max_wait=hours(2)),
        )
        second = record_of(result, 1)
        assert second.first_start == hours(2)
        assert second.options_used == (PurchaseOption.ON_DEMAND,)

    def test_fcfs_first_fit_pickup_order(self):
        # Job 1 (2 cpus) is ahead of job 2 (1 cpu); when 1 CPU frees,
        # first-fit lets the smaller later job run (no convoying).
        jobs = [
            Job(job_id=0, arrival=0, length=60, cpus=1),
            Job(job_id=1, arrival=1, length=60, cpus=2),
            Job(job_id=2, arrival=2, length=60, cpus=1),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "allwait-threshold",
            reserved_cpus=1, queues=single_queue(),
        )
        assert record_of(result, 2).first_start == 60
        assert record_of(result, 2).options_used == (PurchaseOption.RESERVED,)

    def test_pickup_skips_already_started(self):
        # Job 1 hits its W fallback on-demand; when reserved later frees
        # it must not start again.
        jobs = [
            Job(job_id=0, arrival=0, length=hours(4), cpus=1),
            Job(job_id=1, arrival=0, length=30, cpus=1),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "allwait-threshold",
            reserved_cpus=1, queues=single_queue(max_wait=60),
        )
        second = record_of(result, 1)
        assert second.first_start == 60
        assert second.finish == 90


class TestSegmentExecution:
    def test_wait_awhile_runs_in_valleys(self):
        day = np.full(24, 200.0)
        day[10:12] = 10.0
        carbon = CarbonIntensityTrace(np.tile(day, 10), name="valley")
        jobs = [Job(job_id=0, arrival=hours(6), length=120, cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), carbon, "wait-awhile", queues=single_queue()
        )
        record = record_of(result, 0)
        assert record.first_start == hours(10)
        assert record.finish == hours(12)
        # Carbon accounted at the valley intensity: 2 h * 10 g * 0.01 kW
        assert record.carbon_g == pytest.approx(2 * 10 * 0.01)

    def test_segment_job_grabs_reserved_per_segment(self):
        day = np.full(24, 200.0)
        day[10] = 10.0
        day[14] = 20.0
        carbon = CarbonIntensityTrace(np.tile(day, 10), name="two-valleys")
        jobs = [Job(job_id=0, arrival=hours(9), length=120, cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), carbon, "wait-awhile",
            reserved_cpus=1, queues=single_queue(),
        )
        record = record_of(result, 0)
        assert len(record.usage) == 2
        assert all(u.option is PurchaseOption.RESERVED for u in record.usage)

    def test_waiting_time_counts_pauses(self):
        day = np.full(24, 200.0)
        day[10:12] = 10.0
        carbon = CarbonIntensityTrace(np.tile(day, 10))
        jobs = [Job(job_id=0, arrival=hours(6), length=120, cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), carbon, "wait-awhile", queues=single_queue()
        )
        assert record_of(result, 0).waiting_time == hours(4)


class TestSpotExecution:
    def test_spot_used_without_evictions(self):
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=1, queue="")]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "spot-first:carbon-time",
            queues=QueueSet((JobQueue(name="q", max_length=hours(2), max_wait=0),)),
            eviction_model=NoEvictions(),
        )
        record = record_of(result, 0)
        assert record.options_used == (PurchaseOption.SPOT,)
        assert record.evictions == 0

    def test_eviction_restarts_on_demand(self):
        jobs = [Job(job_id=0, arrival=0, length=hours(2), cpus=1)]
        # 99.9%/hour eviction: the job will certainly be evicted.
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "spot-first:carbon-time",
            queues=QueueSet((JobQueue(name="q", max_length=hours(2), max_wait=0),)),
            eviction_model=HourlyHazard(0.999), spot_seed=3,
        )
        record = record_of(result, 0)
        assert record.evictions == 1
        assert record.lost_cpu_minutes > 0
        assert record.options_used[0] is PurchaseOption.SPOT
        assert record.options_used[-1] is PurchaseOption.ON_DEMAND
        # The redo runs the full length after the eviction.
        assert record.finish > record.first_start + record.length
        assert record.waiting_time == record.lost_cpu_minutes

    def test_eviction_cost_includes_lost_spot_time(self):
        jobs = [Job(job_id=0, arrival=0, length=hours(2), cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "spot-first:carbon-time",
            queues=QueueSet((JobQueue(name="q", max_length=hours(2), max_wait=0),)),
            eviction_model=HourlyHazard(0.999), spot_seed=3,
        )
        record = record_of(result, 0)
        pricing = result.pricing
        lost_cost = pricing.usage_cost(PurchaseOption.SPOT, record.lost_cpu_minutes)
        redo_cost = pricing.usage_cost(PurchaseOption.ON_DEMAND, record.length)
        assert record.usage_cost == pytest.approx(lost_cost + redo_cost)

    def test_spot_deterministic_under_seed(self):
        jobs = [Job(job_id=0, arrival=0, length=hours(2), cpus=1)]
        queues = QueueSet((JobQueue(name="q", max_length=hours(2), max_wait=0),))
        kwargs = dict(queues=queues, eviction_model=HourlyHazard(0.5), spot_seed=11)
        a = run_simulation(WorkloadTrace(jobs), flat(), "spot-first:carbon-time", **kwargs)
        b = run_simulation(WorkloadTrace(jobs), flat(), "spot-first:carbon-time", **kwargs)
        assert a.records[0].finish == b.records[0].finish

    def test_evicted_restart_prefers_reserved(self):
        jobs = [Job(job_id=0, arrival=0, length=hours(2), cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "spot-res:carbon-time",
            reserved_cpus=4,
            queues=QueueSet((JobQueue(name="q", max_length=hours(2), max_wait=0),)),
            eviction_model=HourlyHazard(0.999), spot_seed=3,
        )
        record = record_of(result, 0)
        assert record.options_used[-1] is PurchaseOption.RESERVED


class TestValidationPlumbing:
    def test_workload_exceeding_queue_rejected(self):
        jobs = [Job(job_id=0, arrival=0, length=days(10), cpus=1)]
        with pytest.raises(ConfigError):
            run_simulation(WorkloadTrace(jobs), flat(), "nowait")

    def test_carbon_trace_auto_tiled(self):
        # A 1-day carbon trace must stretch to cover a 3-day workload.
        jobs = [Job(job_id=0, arrival=days(2), length=hours(30), cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(hours_count=24), "nowait", queues=single_queue()
        )
        assert result.records[0].finish == days(2) + hours(30)

    def test_policy_object_accepted(self):
        from repro.policies.carbon_agnostic import NoWait

        jobs = [Job(job_id=0, arrival=0, length=60, cpus=1)]
        result = run_simulation(WorkloadTrace(jobs), flat(), NoWait(), queues=single_queue())
        assert result.policy_name == "NoWait"

    def test_bad_policy_type_rejected(self):
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=1)]
        with pytest.raises(ConfigError):
            run_simulation(WorkloadTrace(jobs), flat(), 42, queues=single_queue())
