"""Campaign journal/resume tests, including crash-at-arbitrary-prefix.

The core property (satellite 2): a campaign interrupted after *any*
prefix of its journal -- including a torn final line -- resumes to a
digest-identical outcome while re-executing only the un-journaled
distinct specs.  Hypothesis drives the cut point; a real SIGKILL'd
subprocess covers the end-to-end CLI path; the remaining tests pin
journal corruption tolerance, the campaign lock, failure re-indexing,
and heal-on-resume semantics.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import CampaignError
from repro.faults import parse_fault_plan
from repro.simulator.runner import (
    Campaign,
    RunStats,
    SimulationSpec,
    execution_count,
)
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

DISTINCT = 6

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def carbon():
    return CarbonIntensityTrace(np.linspace(120.0, 280.0, 48), name="ramp")


@pytest.fixture(scope="module")
def workload():
    jobs = [Job(job_id=i, arrival=i * 30, length=60, cpus=1) for i in range(4)]
    return WorkloadTrace(jobs, name="campaign-small")


def make_specs(workload, carbon):
    """DISTINCT distinct specs plus two aliases (8 slots total)."""
    specs = [
        SimulationSpec.build(workload, carbon, "nowait", spot_seed=seed)
        for seed in range(DISTINCT)
    ]
    return specs + [specs[0], specs[3]]


@pytest.fixture(scope="module")
def reference(tmp_path_factory, workload, carbon):
    """One uninterrupted campaign run: the parity oracle for resumes."""
    directory = tmp_path_factory.mktemp("campaign-reference")
    campaign = Campaign.create(directory, make_specs(workload, carbon), name="ref")
    report = campaign.run(jobs=1, backend="serial", use_cache=False)
    assert report.complete
    journal_lines = [
        line
        for line in (directory / "journal.jsonl").read_text().splitlines()
        if json.loads(line)["event"] == "completed"
    ]
    assert len(journal_lines) == DISTINCT
    return {
        "directory": directory,
        "journal_lines": journal_lines,
        "digest": report.results_digest(),
    }


class TestCrashResumeProperty:
    @given(cut=st.integers(min_value=0, max_value=DISTINCT))
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_resume_after_any_journal_prefix(
        self, cut, tmp_path_factory, workload, carbon, reference
    ):
        """Truncate the journal to its first ``cut`` completions (plus a
        torn partial line, as a SIGKILL mid-append would leave), resume,
        and require digest parity with exactly ``DISTINCT - cut``
        re-executions -- journaled specs never run again."""
        directory = tmp_path_factory.mktemp(f"campaign-cut{cut}")
        Campaign.create(directory, make_specs(workload, carbon), name="cut")
        prefix = reference["journal_lines"][:cut]
        torn = '{"event": "completed", "dig'
        (directory / "journal.jsonl").write_text("\n".join([*prefix, torn]) + "\n")
        for line in prefix:
            digest = json.loads(line)["digest"]
            source = reference["directory"] / "results" / f"{digest}.pkl"
            (directory / "results" / f"{digest}.pkl").write_bytes(
                source.read_bytes()
            )

        campaign = Campaign.load(directory)
        assert len(campaign.completed_results()) == cut
        executed_before = execution_count()
        report = campaign.run(jobs=1, backend="serial", use_cache=False)
        assert execution_count() - executed_before == DISTINCT - cut
        assert report.complete
        assert report.results_digest() == reference["digest"]


class TestJournalSemantics:
    def test_limit_interrupt_then_resume(self, tmp_path, workload, carbon, reference):
        """A deliberately partial run journals its completions; the next
        run picks up only the remainder."""
        campaign = Campaign.create(tmp_path, make_specs(workload, carbon), name="lim")
        first = campaign.run(jobs=1, backend="serial", use_cache=False, limit=2)
        assert not first.complete
        assert first.stats.executed == 2
        assert campaign.status()["remaining"] == DISTINCT - 2

        second_stats = RunStats()
        second = campaign.run(
            jobs=1, backend="serial", use_cache=False, stats=second_stats
        )
        assert second.complete
        assert second_stats.executed == DISTINCT - 2
        assert second.results_digest() == reference["digest"]

    def test_garbage_journal_lines_are_skipped(self, tmp_path, workload, carbon):
        campaign = Campaign.create(tmp_path, make_specs(workload, carbon), name="gar")
        (tmp_path / "journal.jsonl").write_text(
            "\n".join(
                [
                    "not json at all",
                    '{"event": "completed"}',
                    '{"event": "completed", "digest": 17}',
                    '[1, 2, 3]',
                    '{"event": "failed", "digest": "abc"}',
                    "",
                ]
            )
        )
        assert campaign.journaled_completions() == set()
        assert campaign.status()["completed"] == 0

    def test_journaled_digest_without_result_file_is_pending(
        self, tmp_path, workload, carbon
    ):
        """A journal line whose result file is missing or corrupt demotes
        the digest back to pending instead of poisoning the campaign."""
        specs = make_specs(workload, carbon)
        campaign = Campaign.create(tmp_path, specs, name="demote")
        missing, corrupt = specs[0].digest(), specs[1].digest()
        (tmp_path / "results" / f"{corrupt}.pkl").write_bytes(b"\x80garbage")
        (tmp_path / "journal.jsonl").write_text(
            json.dumps({"event": "completed", "digest": missing})
            + "\n"
            + json.dumps({"event": "completed", "digest": corrupt})
            + "\n"
        )
        assert campaign.completed_results() == {}
        report = campaign.run(jobs=1, backend="serial", use_cache=False)
        assert report.complete

    def test_second_runner_hits_the_lock(self, tmp_path, workload, carbon):
        import fcntl

        campaign = Campaign.create(tmp_path, make_specs(workload, carbon), name="lck")
        with open(tmp_path / "campaign.lock", "w") as holder:
            fcntl.flock(holder.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            with pytest.raises(CampaignError, match="locked"):
                campaign.run(jobs=1, backend="serial", use_cache=False)
        report = campaign.run(jobs=1, backend="serial", use_cache=False)
        assert report.complete


class TestFailureHandling:
    def test_failed_spec_heals_on_resume(self, tmp_path, workload, carbon):
        """A spec that fails this run (no retry budget) is journaled as
        failed but stays pending; the next run re-attempts and heals it."""
        marker = tmp_path / "flaky-marker"
        plan = parse_fault_plan(f"worker-flaky:path={marker},times=1", seed=0)
        flaky = SimulationSpec.build(workload, carbon, "nowait", fault_plan=plan)
        good = SimulationSpec.build(workload, carbon, "nowait", spot_seed=9)
        directory = tmp_path / "campaign"
        campaign = Campaign.create(directory, [good, flaky], name="heal")

        first = campaign.run(
            jobs=1, backend="serial", use_cache=False,
            retries=0, on_error="partial",
        )
        assert not first.complete
        assert [failure.index for failure in first.failures] == [1]
        journal = (directory / "journal.jsonl").read_text()
        assert '"event": "failed"' in journal

        second = campaign.run(jobs=1, backend="serial", use_cache=False)
        assert second.complete
        assert second.stats.executed == 1  # only the flaky spec re-ran

    def test_raise_mode_reports_campaign_aligned_failures(
        self, tmp_path, workload, carbon
    ):
        from repro.errors import SweepError

        plan = parse_fault_plan("worker-fail", seed=0)
        bad = SimulationSpec.build(workload, carbon, "nowait", fault_plan=plan)
        good = SimulationSpec.build(workload, carbon, "nowait")
        campaign = Campaign.create(
            tmp_path, [good, bad, good, bad], name="align"
        )
        with pytest.raises(SweepError) as excinfo:
            campaign.run(jobs=1, backend="serial", use_cache=False, backoff=0.0)
        error = excinfo.value
        assert len(error.results) == 4
        assert [index for index, r in enumerate(error.results) if r is None] == [1, 3]
        assert [failure.index for failure in error.failures] == [1, 3]


class TestDirectoryLifecycle:
    def test_create_rejects_an_existing_campaign(self, tmp_path, workload, carbon):
        specs = make_specs(workload, carbon)
        Campaign.create(tmp_path, specs, name="one")
        with pytest.raises(CampaignError, match="already holds"):
            Campaign.create(tmp_path, specs, name="two")

    def test_create_rejects_an_empty_spec_list(self, tmp_path):
        with pytest.raises(CampaignError):
            Campaign.create(tmp_path, [], name="empty")

    def test_load_requires_a_manifest(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign manifest"):
            Campaign.load(tmp_path)

    def test_load_rejects_foreign_manifest_versions(
        self, tmp_path, workload, carbon
    ):
        Campaign.create(tmp_path, make_specs(workload, carbon), name="v")
        manifest = json.loads((tmp_path / "campaign.json").read_text())
        manifest["version"] = 99
        (tmp_path / "campaign.json").write_text(json.dumps(manifest))
        with pytest.raises(CampaignError, match="version"):
            Campaign.load(tmp_path)


@pytest.fixture(scope="module")
def heavy_inputs():
    """~10 ms/spec inputs so a subprocess can be killed mid-campaign."""
    jobs = [
        Job(job_id=i, arrival=(i % 144) * 60, length=240, cpus=2)
        for i in range(300)
    ]
    workload = WorkloadTrace(jobs, name="campaign-heavy")
    carbon = CarbonIntensityTrace(
        np.linspace(80.0, 400.0, 7 * 24), name="week-ramp"
    )
    return workload, carbon


class TestSigkillResume:
    def test_sigkilled_cli_campaign_resumes_digest_identical(
        self, tmp_path, heavy_inputs
    ):
        """End-to-end acceptance: SIGKILL the resume CLI mid-campaign,
        resume in-process, and require digest parity with an
        uninterrupted reference plus zero re-executions of journaled
        specs."""
        workload, carbon = heavy_inputs
        specs = [
            SimulationSpec.build(workload, carbon, "carbon-time", spot_seed=seed)
            for seed in range(30)
        ]

        reference_dir = tmp_path / "reference"
        reference = Campaign.create(reference_dir, specs, name="ref")
        reference_report = reference.run(jobs=1, backend="serial", use_cache=False)
        assert reference_report.complete

        victim_dir = tmp_path / "victim"
        campaign = Campaign.create(victim_dir, specs, name="victim")
        journal = victim_dir / "journal.jsonl"

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_TRACE", None)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.simulator.runner",
                "resume", str(victim_dir),
                "--jobs", "1", "--backend", "serial", "--no-cache",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_text().count("completed") >= 2:
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.002)
            else:
                pytest.fail("subprocess never journaled two completions")
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)

        completed_before = len(campaign.completed_results())
        assert completed_before >= 2

        resumed = Campaign.load(victim_dir)
        stats = RunStats()
        executed_before = execution_count()
        report = resumed.run(jobs=1, backend="serial", use_cache=False, stats=stats)
        executed_after_resume = execution_count() - executed_before

        assert report.complete
        assert executed_after_resume == len(specs) - completed_before
        assert executed_after_resume < len(specs)
        assert report.results_digest() == reference_report.results_digest()
