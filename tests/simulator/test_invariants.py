"""Cross-policy accounting invariants on a realistic mixed workload.

These integration checks run every registered policy over the same
workload and assert the conservation laws the accounting must obey no
matter what the policy decided.
"""

import numpy as np
import pytest

from repro.carbon.regions import region_trace
from repro.cluster.pricing import PurchaseOption
from repro.cluster.spot import HourlyHazard
from repro.simulator.simulation import run_simulation
from repro.units import MINUTES_PER_HOUR, days
from repro.workload.sampling import week_long_trace
from repro.workload.synthetic import alibaba_like

ALL_SPECS = (
    "nowait",
    "allwait-threshold",
    "wait-awhile",
    "ecovisor",
    "lowest-slot",
    "lowest-window",
    "carbon-time",
    "res-first:carbon-time",
    "res-first:lowest-window",
    "spot-first:carbon-time",
    "spot-res:carbon-time",
)


@pytest.fixture(scope="module")
def workload():
    return week_long_trace(alibaba_like(8_000, horizon=days(40), seed=6), num_jobs=250)


@pytest.fixture(scope="module")
def carbon():
    return region_trace("SA-AU")


@pytest.fixture(scope="module", params=ALL_SPECS)
def outcome(request, workload, carbon):
    return run_simulation(
        workload,
        carbon,
        request.param,
        reserved_cpus=8,
        eviction_model=HourlyHazard(0.05),
        spot_seed=1,
    )


class TestConservation:
    def test_every_job_completes(self, outcome, workload):
        assert len(outcome.records) == len(workload)

    def test_executed_time_covers_length(self, outcome):
        for record in outcome.records:
            executed = sum(interval.end - interval.start for interval in record.usage)
            # Lost spot progress is re-executed, so total occupancy is
            # length + lost time.
            assert executed * record.cpus == pytest.approx(
                record.length * record.cpus + record.lost_cpu_minutes
            )

    def test_waiting_non_negative(self, outcome):
        assert all(record.waiting_time >= 0 for record in outcome.records)

    def test_finish_after_start(self, outcome):
        for record in outcome.records:
            assert record.finish >= record.first_start + record.length

    def test_no_eviction_without_spot(self, outcome):
        for record in outcome.records:
            if record.evictions:
                assert PurchaseOption.SPOT in record.options_used

    def test_reserved_capacity_never_exceeded(self, outcome):
        from repro.simulator.results import demand_profile

        horizon = max(record.finish for record in outcome.records)
        reserved = demand_profile(
            outcome.records, horizon, option=PurchaseOption.RESERVED
        )
        assert reserved.max() <= outcome.reserved_cpus + 1e-9

    def test_carbon_positive_and_finite(self, outcome):
        assert np.isfinite(outcome.total_carbon_g)
        assert outcome.total_carbon_g > 0

    def test_energy_proportional_to_work(self, outcome):
        for record in outcome.records[:50]:
            executed_cpu_minutes = sum(
                interval.cpu_minutes for interval in record.usage
            )
            expected_kwh = 0.01 * executed_cpu_minutes / MINUTES_PER_HOUR
            assert record.energy_kwh == pytest.approx(expected_kwh)

    def test_metered_cost_matches_usage(self, outcome):
        recomputed = 0.0
        for record in outcome.records:
            for interval in record.usage:
                recomputed += outcome.pricing.usage_cost(
                    interval.option, interval.cpu_minutes
                )
        assert outcome.metered_cost == pytest.approx(recomputed)

    def test_waiting_bounded_by_w_plus_redo(self, outcome):
        """No job waits more than its W plus redone work (evictions)."""
        from repro.workload.job import default_queue_set

        queues = default_queue_set()
        for record in outcome.records:
            bound = queues[record.queue].max_wait + record.lost_cpu_minutes / record.cpus
            assert record.waiting_time <= bound + MINUTES_PER_HOUR


class TestCrossPolicyRelations:
    def test_nowait_is_zero_wait(self, workload, carbon):
        result = run_simulation(workload, carbon, "nowait", reserved_cpus=8)
        assert result.mean_waiting_minutes == 0.0

    def test_carbon_aware_saves_carbon(self, workload, carbon):
        base = run_simulation(workload, carbon, "nowait")
        for spec in ("lowest-slot", "lowest-window", "carbon-time", "wait-awhile",
                     "ecovisor"):
            aware = run_simulation(workload, carbon, spec)
            assert aware.total_carbon_g < base.total_carbon_g, spec

    def test_wait_awhile_dominates_on_carbon(self, workload, carbon):
        """Exact length + suspension must beat every non-interruptible
        carbon policy on pure carbon."""
        best = run_simulation(workload, carbon, "wait-awhile")
        for spec in ("lowest-slot", "lowest-window", "carbon-time"):
            other = run_simulation(workload, carbon, spec)
            assert best.total_carbon_g <= other.total_carbon_g * 1.001, spec

    def test_carbon_time_waits_less_than_lowest_window(self, workload, carbon):
        carbon_time = run_simulation(workload, carbon, "carbon-time")
        lowest_window = run_simulation(workload, carbon, "lowest-window")
        assert carbon_time.mean_waiting_minutes < lowest_window.mean_waiting_minutes

    def test_res_first_cheaper_than_plain(self, workload, carbon):
        plain = run_simulation(workload, carbon, "carbon-time", reserved_cpus=8)
        work_conserving = run_simulation(
            workload, carbon, "res-first:carbon-time", reserved_cpus=8
        )
        assert work_conserving.total_cost < plain.total_cost
        assert work_conserving.reserved_utilization > plain.reserved_utilization

    def test_spot_cheaper_than_on_demand_without_evictions(self, workload, carbon):
        plain = run_simulation(workload, carbon, "carbon-time")
        spot = run_simulation(workload, carbon, "spot-first:carbon-time")
        assert spot.total_cost < plain.total_cost
        # Same schedule, same carbon.
        assert spot.total_carbon_g == pytest.approx(plain.total_carbon_g)

    def test_identical_runs_are_deterministic(self, workload, carbon):
        a = run_simulation(workload, carbon, "res-first:carbon-time", reserved_cpus=8)
        b = run_simulation(workload, carbon, "res-first:carbon-time", reserved_cpus=8)
        assert a.total_carbon_g == b.total_carbon_g
        assert a.total_cost == b.total_cost
        assert [r.finish for r in a.records] == [r.finish for r in b.records]
