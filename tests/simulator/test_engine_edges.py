"""Engine edge cases: ordering, contention, clipping, guards."""

import numpy as np
import pytest

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.pricing import PurchaseOption
from repro.errors import SimulationError
from repro.policies.carbon_agnostic import NoWait
from repro.simulator.engine import Engine
from repro.simulator.simulation import run_simulation
from repro.units import days, hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace


def flat(hours_count=24 * 12):
    return CarbonIntensityTrace(np.full(hours_count, 100.0), name="flat")


def single_queue(max_wait=hours(6)):
    return QueueSet((JobQueue(name="q", max_length=days(3), max_wait=max_wait),))


def record_of(result, job_id):
    return next(r for r in result.records if r.job_id == job_id)


class TestSimultaneousEvents:
    def test_same_minute_arrivals_fcfs_for_reserved(self):
        jobs = [
            Job(job_id=0, arrival=100, length=60, cpus=1),
            Job(job_id=1, arrival=100, length=60, cpus=1),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "nowait", reserved_cpus=1,
            queues=single_queue(),
        )
        assert record_of(result, 0).options_used == (PurchaseOption.RESERVED,)
        assert record_of(result, 1).options_used == (PurchaseOption.ON_DEMAND,)

    def test_finish_frees_before_same_minute_arrival(self):
        jobs = [
            Job(job_id=0, arrival=0, length=60, cpus=1),
            Job(job_id=1, arrival=60, length=30, cpus=1),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "nowait", reserved_cpus=1,
            queues=single_queue(),
        )
        # Job 0 finishes at minute 60; job 1 arrives at 60 and must get
        # the freed reserved CPU.
        assert record_of(result, 1).options_used == (PurchaseOption.RESERVED,)

    def test_contending_segments_split_options(self):
        # Wait Awhile plans per job, so both pick the same valley slot;
        # the single reserved CPU goes to the first, the second's segment
        # overflows to on-demand (no double-allocation).
        day = np.full(24, 200.0)
        day[10] = 10.0
        day[11] = 20.0
        carbon = CarbonIntensityTrace(np.tile(day, 10))
        jobs = [
            Job(job_id=0, arrival=hours(8), length=60, cpus=1),
            Job(job_id=1, arrival=hours(8), length=60, cpus=1),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), carbon, "wait-awhile", reserved_cpus=1,
            queues=single_queue(),
        )
        assert [record.first_start for record in result.records] == (
            [hours(10), hours(10)]
        )
        options = sorted(record.options_used[0] for record in result.records)
        assert options == [PurchaseOption.ON_DEMAND, PurchaseOption.RESERVED]


class TestClipping:
    def test_arrival_at_minute_zero(self):
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "allwait-threshold", reserved_cpus=1,
            queues=single_queue(),
        )
        assert record_of(result, 0).first_start == 0

    def test_wait_awhile_near_horizon(self):
        # A job arriving near the carbon horizon still completes (the
        # simulation tiles the trace).
        jobs = [Job(job_id=0, arrival=days(11), length=hours(5), cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(hours_count=24 * 11 + 1), "wait-awhile",
            queues=single_queue(),
        )
        assert record_of(result, 0).finish >= days(11) + hours(5)

    def test_multiday_job_waits_and_completes(self):
        jobs = [Job(job_id=0, arrival=0, length=days(3), cpus=2)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "carbon-time", queues=single_queue()
        )
        record = record_of(result, 0)
        assert record.finish - record.first_start == days(3)


class TestGuards:
    def test_forecaster_must_wrap_same_trace(self):
        trace_a = flat()
        trace_b = flat()
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=1, queue="q")]
        with pytest.raises(SimulationError):
            Engine(
                workload=WorkloadTrace(jobs),
                carbon=trace_a,
                policy=NoWait(),
                queues=single_queue(),
                forecaster=PerfectForecaster(trace_b),
            )

    def test_negative_event_time_rejected(self):
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=1, queue="q")]
        engine = Engine(
            workload=WorkloadTrace(jobs),
            carbon=flat(),
            policy=NoWait(),
            queues=single_queue(),
        )
        with pytest.raises(SimulationError):
            engine._push(-1, 0, None)

    def test_validate_flag_catches_bad_policy(self):
        class Broken(NoWait):
            name = "Broken"

            def decide(self, job, ctx):
                from repro.policies.base import Decision

                return Decision(start_time=job.arrival - 10 if job.arrival else 0)

        jobs = [Job(job_id=0, arrival=100, length=60, cpus=1)]
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            run_simulation(
                WorkloadTrace(jobs), flat(), Broken(), queues=single_queue()
            )


class TestPendingQueue:
    def test_partial_drain_keeps_order(self):
        # Three pending 1-CPU jobs; 2 CPUs free up at once: the first two
        # (by arrival) start, the third keeps waiting.
        jobs = [
            Job(job_id=0, arrival=0, length=120, cpus=2),
            Job(job_id=1, arrival=1, length=60, cpus=1),
            Job(job_id=2, arrival=2, length=60, cpus=1),
            Job(job_id=3, arrival=3, length=60, cpus=2),
        ]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "allwait-threshold", reserved_cpus=2,
            queues=single_queue(),
        )
        assert record_of(result, 1).first_start == 120
        assert record_of(result, 2).first_start == 120
        # Job 3 (2 CPUs) starts only once both 1-CPU jobs finish.
        assert record_of(result, 3).first_start == 180

    def test_many_jobs_single_reserved_cpu_serialize(self):
        jobs = [Job(job_id=i, arrival=0, length=10, cpus=1) for i in range(5)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "allwait-threshold", reserved_cpus=1,
            queues=single_queue(),
        )
        starts = sorted(record.first_start for record in result.records)
        assert starts == [0, 10, 20, 30, 40]
        assert all(
            record.options_used == (PurchaseOption.RESERVED,)
            for record in result.records
        )
