"""Backend-conformance suite: one contract, every registered backend.

``run_many``'s guarantees -- digest parity with direct execution,
in-batch dedup, warm-cache zero-execution, retry/timeout/partial-result
recovery, fault-plan reproducibility, and the 16-spec/2-poisoned
acceptance scenario -- are asserted here against *every* registered
:class:`~repro.simulator.runner.backends.SweepBackend`, via one
parametrized fixture.  A future backend inherits the full guarantee set
by registering itself: the suite picks it up automatically.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import ConfigError, SweepError
from repro.faults import parse_fault_plan
from repro.simulator.runner import (
    ResultCache,
    RunStats,
    SimulationSpec,
    available_backends,
    execution_count,
    run_many,
)
from repro.simulator.runner.backends import BACKENDS
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(params=sorted(available_backends()))
def backend(request):
    """Every registered backend name -- the conformance axis."""
    return request.param


@pytest.fixture(scope="module")
def carbon():
    return CarbonIntensityTrace(np.linspace(100.0, 300.0, 48), name="ramp")


@pytest.fixture(scope="module")
def workload():
    jobs = [Job(job_id=i, arrival=i * 30, length=60, cpus=1) for i in range(4)]
    return WorkloadTrace(jobs, name="backend-conformance")


def make_spec(workload, carbon, spot_seed=0, plan_text=None):
    """One small spec, optionally poisoned by a fault plan."""
    plan = (
        parse_fault_plan(plan_text, seed=CHAOS_SEED) if plan_text is not None else None
    )
    return SimulationSpec.build(
        workload, carbon, "nowait", spot_seed=spot_seed, fault_plan=plan
    )


class TestResultParity:
    def test_digests_match_direct_execution(self, backend, workload, carbon):
        specs = [make_spec(workload, carbon, spot_seed=index) for index in range(3)]
        results = run_many(specs, jobs=2, use_cache=False, backend=backend)
        direct = [spec.run().digest() for spec in specs]
        assert [result.digest() for result in results] == direct

    def test_all_backends_agree_on_digests_and_accounting(self, workload, carbon):
        """The cross-backend oracle: the same spec set must produce
        bit-identical result digests and equivalent RunStats counters on
        every backend (wall-clock histograms excluded, their *counts*
        included via runner.executed)."""
        specs = [
            make_spec(workload, carbon, spot_seed=index % 4) for index in range(6)
        ]
        digests_by_backend = {}
        accounting_by_backend = {}
        counters_by_backend = {}
        for name in sorted(available_backends()):
            stats = RunStats()
            results = run_many(
                specs, jobs=2, use_cache=False, stats=stats, backend=name
            )
            digests_by_backend[name] = [result.digest() for result in results]
            accounting_by_backend[name] = (
                stats.total,
                stats.executed,
                stats.cache_hits,
                stats.deduplicated,
                stats.failed,
                stats.retries,
                stats.timeouts,
            )
            counters_by_backend[name] = stats.metrics["counters"]
            assert stats.backend == name
        reference = next(iter(digests_by_backend.values()))
        assert all(d == reference for d in digests_by_backend.values())
        reference_accounting = next(iter(accounting_by_backend.values()))
        assert all(
            a == reference_accounting for a in accounting_by_backend.values()
        )
        reference_counters = next(iter(counters_by_backend.values()))
        assert all(c == reference_counters for c in counters_by_backend.values())

    def test_fault_plans_reproduce_across_runs(self, backend, workload, carbon):
        plan = parse_fault_plan(
            "eviction-storm:rate=0.5,start_hour=0,hours=24", seed=CHAOS_SEED
        )
        spec = SimulationSpec.build(
            workload, carbon, "spot-first:nowait", fault_plan=plan
        )
        first = run_many([spec], jobs=2, use_cache=False, backend=backend)
        second = run_many([spec], jobs=2, use_cache=False, backend=backend)
        assert first[0].digest() == second[0].digest()


class TestCacheAndDedupBehavior:
    def test_in_batch_duplicates_execute_once(self, backend, workload, carbon):
        stats = RunStats()
        results = run_many(
            [make_spec(workload, carbon)] * 4,
            jobs=2,
            use_cache=False,
            stats=stats,
            backend=backend,
        )
        assert stats.executed == 1
        assert stats.deduplicated == 3
        assert all(result is results[0] for result in results)

    def test_warm_cache_executes_zero_engines(self, backend, workload, carbon):
        specs = [make_spec(workload, carbon, spot_seed=index) for index in range(3)]
        cache = ResultCache()
        cold_stats, warm_stats = RunStats(), RunStats()
        run_many(specs, jobs=2, cache=cache, stats=cold_stats, backend=backend)
        executed_before = execution_count()
        warm = run_many(specs, jobs=2, cache=cache, stats=warm_stats, backend=backend)
        assert execution_count() == executed_before
        assert cold_stats.executed == len(specs)
        assert warm_stats.cache_hits == len(specs)
        assert warm_stats.executed == 0
        assert [result.digest() for result in warm] == [
            spec.run().digest() for spec in specs
        ]

    def test_failed_specs_are_never_cached(self, backend, workload, carbon):
        spec = make_spec(workload, carbon, plan_text="worker-fail")
        cache = ResultCache()
        for _ in range(2):
            stats = RunStats()
            run_many(
                [spec], jobs=1, cache=cache, stats=stats,
                backoff=0.0, on_error="partial", backend=backend,
            )
            assert stats.cache_hits == 0
            assert stats.failed == 1


class TestRecoverySemantics:
    def test_flaky_spec_heals_within_retry_budget(
        self, backend, workload, carbon, tmp_path
    ):
        marker = tmp_path / f"flaky-{backend}"
        spec = make_spec(
            workload, carbon, plan_text=f"worker-flaky:path={marker},times=1"
        )
        stats = RunStats()
        results = run_many(
            [spec], jobs=2, use_cache=False, stats=stats,
            retries=1, backoff=0.0, backend=backend,
        )
        assert results[0] is not None
        assert stats.retries == 1
        assert stats.failed == 0

    def test_repro_errors_fail_fast(self, backend, workload, carbon):
        spec = make_spec(workload, carbon, plan_text="trace-nan:count=2")
        stats = RunStats()
        results = run_many(
            [spec], jobs=1, use_cache=False, stats=stats,
            retries=5, backoff=0.0, on_error="partial", backend=backend,
        )
        assert results[0] is None
        assert stats.retries == 0
        assert stats.failures[0].error_type == "TraceError"
        assert stats.failures[0].attempts == 1

    def test_raise_mode_attaches_partial_results(self, backend, workload, carbon):
        specs = [make_spec(workload, carbon, spot_seed=index) for index in range(3)]
        specs.append(make_spec(workload, carbon, plan_text="worker-fail"))
        with pytest.raises(SweepError) as excinfo:
            run_many(specs, jobs=2, use_cache=False, backoff=0.0, backend=backend)
        error = excinfo.value
        assert len(error.results) == 4
        assert sum(result is not None for result in error.results) == 3
        assert [failure.index for failure in error.failures] == [3]

    def test_sixteen_specs_two_poisoned(self, backend, workload, carbon):
        """The acceptance scenario on every backend.  Timeout-capable
        backends get the original crash + hang poisons; in-process
        backends (which cannot abandon a hung attempt) get two
        deterministic failers instead -- the degradation contract (14
        good results, 2 structured failures, attempts charged exactly)
        is identical."""
        isolated = BACKENDS[backend].supports_timeout
        specs = []
        for index in range(16):
            plan_text = None
            if index == 5:
                plan_text = "worker-crash" if isolated else "worker-fail"
            elif index == 11:
                plan_text = "worker-hang:seconds=30" if isolated else "worker-fail:"
            specs.append(
                make_spec(workload, carbon, spot_seed=index, plan_text=plan_text)
            )
        stats = RunStats()
        results = run_many(
            specs,
            jobs=4,
            use_cache=False,
            stats=stats,
            retries=1,
            timeout=2.5 if isolated else None,
            backoff=0.0,
            on_error="partial",
            backend=backend,
        )
        assert len(results) == 16
        good = [index for index, result in enumerate(results) if result is not None]
        assert len(good) == 14
        assert {index for index in range(16) if index not in good} == {5, 11}
        by_index = {failure.index: failure for failure in stats.failures}
        assert set(by_index) == {5, 11}
        if isolated:
            assert by_index[5].error_type == "WorkerCrash"
            assert by_index[11].error_type == "TimeoutError"
            assert stats.timeouts >= 2
            assert stats.pool_respawns >= 2
        assert all(failure.attempts == 2 for failure in stats.failures)
        assert stats.failed == 2
        assert stats.retries == 2


class TestBackendSelection:
    def test_unknown_backend_is_rejected(self, workload, carbon):
        with pytest.raises(ConfigError):
            run_many([make_spec(workload, carbon)], backend="telepathy")

    def test_serial_cannot_enforce_timeouts(self, workload, carbon):
        with pytest.raises(ConfigError):
            run_many([make_spec(workload, carbon)], backend="serial", timeout=1.0)

    def test_env_variable_selects_the_backend(self, workload, carbon, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pool")
        stats = RunStats()
        run_many([make_spec(workload, carbon)], jobs=1, use_cache=False, stats=stats)
        assert stats.backend == "pool"

    def test_heuristic_default_is_serial_then_pool(self, workload, carbon):
        serial_stats, pool_stats = RunStats(), RunStats()
        spec = make_spec(workload, carbon)
        run_many([spec], jobs=1, use_cache=False, stats=serial_stats)
        run_many([spec], jobs=2, use_cache=False, stats=pool_stats)
        assert serial_stats.backend == "serial"
        assert pool_stats.backend == "pool"
