"""Determinism regression: same seed, bit-identical results.

Runtime complement of lint rule SIM001 (no unseeded randomness): a full
Engine scenario -- including the stochastic spot-eviction path and a
noisy forecaster -- run twice with the same seeds must produce
bit-identical :meth:`SimulationResult.digest` values, and a different
seed must change the outcome.
"""

import pytest

from repro import (
    CheckpointConfig,
    HourlyHazard,
    alibaba_like,
    region_trace,
    run_simulation,
    week_long_trace,
)
from repro.units import days


@pytest.fixture(scope="module")
def workload():
    return week_long_trace(
        alibaba_like(4_000, horizon=days(30), seed=7), num_jobs=120
    )


@pytest.fixture(scope="module")
def carbon_trace():
    return region_trace("SA-AU")


def run_spot_scenario(workload, carbon_trace, spot_seed=3, forecast_seed=11):
    """One full stochastic scenario: spot + checkpointing + noisy CI."""
    return run_simulation(
        workload,
        carbon_trace,
        "spot-res:carbon-time",
        reserved_cpus=6,
        eviction_model=HourlyHazard(0.15),
        checkpointing=CheckpointConfig(interval=30, overhead=2),
        retry_spot=True,
        forecast_sigma=0.1,
        forecast_seed=forecast_seed,
        spot_seed=spot_seed,
    )


def test_same_seed_is_bit_identical(workload, carbon_trace):
    first = run_spot_scenario(workload, carbon_trace)
    second = run_spot_scenario(workload, carbon_trace)
    assert first.digest() == second.digest()


def test_digest_covers_the_whole_result(workload, carbon_trace):
    first = run_spot_scenario(workload, carbon_trace)
    second = run_spot_scenario(workload, carbon_trace)
    # The digest equality above is not vacuous: the scenario actually
    # exercises the stochastic machinery and the totals agree exactly.
    assert first.total_evictions > 0
    assert first.total_carbon_g == second.total_carbon_g
    assert first.total_cost == second.total_cost


def test_different_spot_seed_changes_the_outcome(workload, carbon_trace):
    baseline = run_spot_scenario(workload, carbon_trace, spot_seed=3)
    reseeded = run_spot_scenario(workload, carbon_trace, spot_seed=4)
    assert baseline.digest() != reseeded.digest()


def test_deterministic_scenario_digest_is_stable_across_calls(workload, carbon_trace):
    # No stochastic components at all: digest() itself must be a pure
    # function of the result.
    result = run_simulation(workload, carbon_trace, "carbon-time")
    assert result.digest() == result.digest()
