"""ResultCache disk layer: round-trips, and corruption degrades to misses.

A shared cache directory can hold entries truncated by a killed writer,
zeroed by a bad disk, or pickled by an incompatible code version.  All
of them must read as cache *misses* — never exceptions, never wrong
results.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.trace import CarbonIntensityTrace
from repro.simulator.runner.cache import ResultCache
from repro.simulator.simulation import run_simulation
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace


@pytest.fixture(scope="module")
def shared_result():
    """One result reused across hypothesis examples (module-scoped)."""
    workload = WorkloadTrace(
        [
            Job(job_id=0, arrival=0, length=60, cpus=2),
            Job(job_id=1, arrival=45, length=120, cpus=1),
        ],
        name="cache-test",
    )
    carbon = CarbonIntensityTrace(np.full(48, 100.0), name="flat")
    return run_simulation(workload, carbon, "nowait")


def fresh_result(tiny_workload, flat_carbon):
    return run_simulation(tiny_workload, flat_carbon, "nowait")


def test_disk_round_trip(tmp_path, tiny_workload, flat_carbon):
    result = fresh_result(tiny_workload, flat_carbon)
    writer = ResultCache(disk_dir=tmp_path)
    writer.put("key", result)
    reader = ResultCache(disk_dir=tmp_path)  # cold memory layer
    assert reader.get("key") == result
    assert reader.disk_hits == 1


class TestCorruptionIsAMiss:
    def _seeded_cache(self, tmp_path, result):
        cache = ResultCache(disk_dir=tmp_path)
        cache.put("key", result)
        return tmp_path / "key.pkl"

    @given(cut=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_truncated_entry(self, tmp_path_factory, shared_result, cut):
        tmp_path = tmp_path_factory.mktemp("trunc")
        path = self._seeded_cache(tmp_path, shared_result)
        payload = path.read_bytes()
        path.write_bytes(payload[: min(cut, len(payload) - 1)])
        reader = ResultCache(disk_dir=tmp_path)
        assert reader.get("key") is None
        assert reader.misses == 1

    @given(garbage=st.binary(min_size=0, max_size=64))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_garbage_entry(self, tmp_path_factory, shared_result, garbage):
        tmp_path = tmp_path_factory.mktemp("garbage")
        path = self._seeded_cache(tmp_path, shared_result)
        path.write_bytes(garbage)
        reader = ResultCache(disk_dir=tmp_path)
        assert reader.get("key") is None

    def test_wrong_object_type(self, tmp_path, shared_result):
        path = self._seeded_cache(tmp_path, shared_result)
        path.write_bytes(pickle.dumps({"not": "a result"}))
        reader = ResultCache(disk_dir=tmp_path)
        assert reader.get("key") is None

    def test_unreadable_entry(self, tmp_path, shared_result):
        if os.geteuid() == 0:
            pytest.skip("root ignores file permission bits")
        path = self._seeded_cache(tmp_path, shared_result)
        path.chmod(0o000)
        try:
            reader = ResultCache(disk_dir=tmp_path)
            assert reader.get("key") is None
        finally:
            path.chmod(0o644)

    def test_miss_then_rewrite_recovers(self, tmp_path, shared_result):
        path = self._seeded_cache(tmp_path, shared_result)
        path.write_bytes(b"\x00" * 10)
        cache = ResultCache(disk_dir=tmp_path)
        assert cache.get("key") is None
        cache.put("key", shared_result)
        cold = ResultCache(disk_dir=tmp_path)
        assert cold.get("key") == shared_result


def test_memory_layer_untouched_by_disk_corruption(tmp_path, tiny_workload, flat_carbon):
    result = fresh_result(tiny_workload, flat_carbon)
    cache = ResultCache(disk_dir=tmp_path)
    cache.put("key", result)
    (tmp_path / "key.pkl").write_bytes(b"junk")
    # The writer's own memory layer still serves the result.
    assert cache.get("key") == result
    assert cache.memory_hits == 1


def test_interleaved_writers_and_readers_never_tear(tmp_path, shared_result):
    """Concurrent put/get on one key: atomic publication means readers
    observe either a complete valid entry or a miss -- never a torn
    pickle, never an exception (the workqueue backend's shared-cache
    protocol depends on exactly this)."""
    import threading

    stop = threading.Event()
    errors: list[Exception] = []
    expected = shared_result.digest()

    def writer() -> None:
        try:
            while not stop.is_set():
                ResultCache(disk_dir=tmp_path).put("key", shared_result)
        except Exception as error:
            errors.append(error)

    def reader() -> None:
        try:
            hits = 0
            while not stop.is_set() or hits == 0:
                found = ResultCache(disk_dir=tmp_path).get("key")
                if found is not None:
                    hits += 1
                    assert found.digest() == expected
        except Exception as error:
            errors.append(error)

    threads = [threading.Thread(target=writer) for _ in range(2)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    import time as _time

    _time.sleep(0.5)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    assert errors == []
