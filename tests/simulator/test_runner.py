"""Batch runner: spec digests, parallel/serial parity, and caching.

The acceptance bar of the sweep runner: ``run_many`` under any worker
count, a direct ``run_simulation`` call, and a cache-served rerun must
all yield byte-identical :meth:`SimulationResult.digest` values -- and a
warm cache must execute zero engines.
"""

import pytest

from repro import (
    Job,
    WorkloadTrace,
    alibaba_like,
    region_trace,
    run_simulation,
    week_long_trace,
)
from repro.errors import ConfigError, SimulationError
from repro.policies.carbon_time import CarbonTime
from repro.simulator.engine import Engine
from repro.simulator.runner import (
    FrozenSeries,
    FrozenWorkload,
    ResultCache,
    RunStats,
    SimulationSpec,
    code_version_salt,
    execution_count,
    resolve_jobs,
    run_many,
)
from repro.units import days, hours


@pytest.fixture(scope="module")
def workload():
    return week_long_trace(
        alibaba_like(4_000, horizon=days(30), seed=7), num_jobs=80
    )


@pytest.fixture(scope="module")
def carbon_trace():
    return region_trace("SA-AU")


@pytest.fixture(scope="module")
def specs(workload, carbon_trace):
    return [
        SimulationSpec.build(workload, carbon_trace, policy, reserved_cpus=reserved)
        for policy, reserved in (
            ("nowait", 0),
            ("carbon-time", 0),
            ("res-first:carbon-time", 4),
        )
    ]


class TestFrozenPayloads:
    def test_workload_digest_matches_live_trace(self, workload):
        assert FrozenWorkload.freeze(workload).content_digest() == (
            workload.content_digest()
        )

    def test_series_digest_matches_live_trace(self, carbon_trace):
        assert FrozenSeries.freeze(carbon_trace).content_digest() == (
            carbon_trace.content_digest()
        )

    def test_thaw_roundtrips_the_workload(self, workload):
        thawed = FrozenWorkload.freeze(workload).thaw()
        assert thawed.content_digest() == workload.content_digest()

    def test_freeze_is_memoized_per_object(self, workload):
        assert FrozenWorkload.freeze(workload) is FrozenWorkload.freeze(workload)


class TestSpec:
    def test_digest_is_stable_and_knob_sensitive(self, workload, carbon_trace):
        base = SimulationSpec.build(workload, carbon_trace, "carbon-time")
        again = SimulationSpec.build(workload, carbon_trace, "carbon-time")
        other = SimulationSpec.build(
            workload, carbon_trace, "carbon-time", reserved_cpus=2
        )
        assert base.digest() == again.digest()
        assert base.digest() != other.digest()

    def test_policy_kwargs_affect_the_digest(self, workload, carbon_trace):
        base = SimulationSpec.build(workload, carbon_trace, "spot-res:carbon-time")
        tuned = SimulationSpec.build(
            workload,
            carbon_trace,
            "spot-res:carbon-time",
            policy_kwargs={"spot_max_length": hours(6)},
        )
        assert base.digest() != tuned.digest()

    def test_rejects_policy_instances(self, workload, carbon_trace):
        with pytest.raises(ConfigError):
            SimulationSpec.build(workload, carbon_trace, CarbonTime())

    def test_run_matches_run_simulation(self, workload, carbon_trace):
        spec = SimulationSpec.build(workload, carbon_trace, "carbon-time")
        direct = run_simulation(workload, carbon_trace, "carbon-time")
        assert spec.run().digest() == direct.digest()


class TestParity:
    def test_serial_parallel_and_direct_agree(self, specs, workload, carbon_trace):
        serial = run_many(specs, jobs=1, use_cache=False)
        parallel = run_many(specs, jobs=4, use_cache=False)
        direct = [
            run_simulation(workload, carbon_trace, "nowait", reserved_cpus=0),
            run_simulation(workload, carbon_trace, "carbon-time", reserved_cpus=0),
            run_simulation(
                workload, carbon_trace, "res-first:carbon-time", reserved_cpus=4
            ),
        ]
        serial_digests = [result.digest() for result in serial]
        assert serial_digests == [result.digest() for result in parallel]
        assert serial_digests == [result.digest() for result in direct]

    def test_cached_results_are_digest_identical(self, specs):
        cache = ResultCache()
        cold = run_many(specs, jobs=1, cache=cache)
        warm = run_many(specs, jobs=1, cache=cache)
        assert [r.digest() for r in cold] == [r.digest() for r in warm]


class TestCaching:
    def test_warm_cache_executes_zero_engines(self, specs):
        cache = ResultCache()
        cold_stats, warm_stats = RunStats(), RunStats()
        run_many(specs, jobs=1, cache=cache, stats=cold_stats)
        executed_before = execution_count()
        run_many(specs, jobs=1, cache=cache, stats=warm_stats)
        assert execution_count() == executed_before
        assert cold_stats.executed == len(specs)
        assert warm_stats.cache_hits == len(specs)
        assert warm_stats.executed == 0

    def test_in_batch_duplicates_execute_once(self, specs):
        stats = RunStats()
        results = run_many([specs[0]] * 4, jobs=1, use_cache=False, stats=stats)
        assert stats.executed == 1
        assert stats.deduplicated == 3
        assert all(result is results[0] for result in results)

    def test_disk_cache_survives_a_fresh_process_cache(self, specs, tmp_path):
        first = ResultCache(disk_dir=tmp_path)
        cold = run_many(specs[:1], jobs=1, cache=first)
        # A new ResultCache over the same directory models a fresh process.
        second = ResultCache(disk_dir=tmp_path)
        stats = RunStats()
        warm = run_many(specs[:1], jobs=1, cache=second, stats=stats)
        assert stats.cache_hits == 1
        assert warm[0].digest() == cold[0].digest()

    def test_corrupt_disk_entries_are_misses(self, specs, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        key = cache.key_for(specs[0])
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.get(key) is None

    def test_no_cache_env_bypasses_the_cache(self, specs, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache()
        stats = RunStats()
        run_many(specs[:1], jobs=1, cache=cache, stats=stats)
        assert stats.executed == 1
        assert len(cache) == 0

    def test_code_version_salt_is_a_stable_hexdigest(self):
        salt = code_version_salt()
        assert salt == code_version_salt()
        assert len(salt) == 64
        int(salt, 16)


class TestResolveJobs:
    def test_explicit_argument_wins(self):
        assert resolve_jobs(3, environ={"REPRO_JOBS": "7"}) == 3

    def test_env_fallback(self):
        assert resolve_jobs(None, environ={"REPRO_JOBS": "5"}) == 5

    def test_default_is_serial(self):
        assert resolve_jobs(None, environ={}) == 1

    def test_zero_jobs_is_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(0)


class TestDecisionMemoization:
    def test_memoized_run_is_digest_identical(self, workload, carbon_trace):
        plain = run_simulation(
            workload, carbon_trace, "carbon-time", memoize_decisions=False
        )
        memoized = run_simulation(
            workload, carbon_trace, "carbon-time", memoize_decisions=True
        )
        assert plain.digest() == memoized.digest()


class TestUnfinishedJobsMessage:
    @staticmethod
    def _run_with_dropped_finishes(monkeypatch, num_jobs):
        monkeypatch.setattr(Engine, "_on_finish", lambda self, now, run: None)
        workload = WorkloadTrace(
            (
                Job(job_id=i, arrival=0, length=30, cpus=1, queue="short")
                for i in range(num_jobs)
            ),
            name="stuck",
            horizon=days(1),
        )
        with pytest.raises(SimulationError) as excinfo:
            run_simulation(
                workload,
                region_trace("SA-AU"),
                "nowait",
                validate=False,
                # The linear fast path never routes through _on_finish;
                # the unfinished-jobs guard under test lives on the
                # event-loop paths.
                fast_path=False,
            )
        return str(excinfo.value)

    def test_few_ids_are_listed_without_ellipsis(self, monkeypatch):
        message = self._run_with_dropped_finishes(monkeypatch, 3)
        assert "[0, 1, 2]" in message
        assert "..." not in message

    def test_many_ids_are_truncated_with_ellipsis(self, monkeypatch):
        message = self._run_with_dropped_finishes(monkeypatch, 7)
        assert "[0, 1, 2, 3, 4, ...]" in message
