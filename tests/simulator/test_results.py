"""JobRecord / SimulationResult accounting."""

import pytest

from repro.cluster.pricing import DEFAULT_PRICING, PricingModel, PurchaseOption
from repro.errors import SimulationError
from repro.simulator.results import (
    JobRecord,
    SimulationResult,
    UsageInterval,
    demand_profile,
)


def record(job_id=0, arrival=0, length=60, cpus=1, first_start=0, finish=60,
           carbon_g=10.0, usage_cost=0.1, baseline_carbon_g=20.0,
           usage=None, evictions=0, lost=0.0):
    usage = usage if usage is not None else (
        UsageInterval(first_start, finish, cpus, PurchaseOption.ON_DEMAND),
    )
    return JobRecord(
        job_id=job_id, queue="q", arrival=arrival, length=length, cpus=cpus,
        first_start=first_start, finish=finish, carbon_g=carbon_g,
        energy_kwh=0.01, usage_cost=usage_cost,
        baseline_carbon_g=baseline_carbon_g, usage=usage,
        evictions=evictions, lost_cpu_minutes=lost,
    )


def result(records, reserved=0, horizon=1440, pricing=DEFAULT_PRICING):
    return SimulationResult(
        policy_name="p", workload_name="w", region="r",
        reserved_cpus=reserved, horizon=horizon, pricing=pricing,
        records=tuple(records),
    )


class TestUsageInterval:
    def test_cpu_minutes(self):
        interval = UsageInterval(0, 30, 4, PurchaseOption.SPOT)
        assert interval.cpu_minutes == 120.0

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            UsageInterval(10, 10, 1, PurchaseOption.SPOT)


class TestJobRecord:
    def test_waiting_and_completion(self):
        r = record(arrival=0, length=60, first_start=30, finish=90)
        assert r.completion_time == 90
        assert r.waiting_time == 30

    def test_carbon_saving(self):
        assert record(carbon_g=8.0, baseline_carbon_g=10.0).carbon_saving_g == 2.0

    def test_rejects_start_before_arrival(self):
        with pytest.raises(SimulationError):
            record(arrival=50, first_start=10, finish=100)

    def test_rejects_too_early_finish(self):
        with pytest.raises(SimulationError):
            record(length=60, first_start=0, finish=59)

    def test_options_used_deduplicated_in_order(self):
        usage = (
            UsageInterval(0, 10, 1, PurchaseOption.SPOT),
            UsageInterval(10, 40, 1, PurchaseOption.ON_DEMAND),
            UsageInterval(40, 60, 1, PurchaseOption.ON_DEMAND),
        )
        r = record(usage=usage)
        assert r.options_used == (PurchaseOption.SPOT, PurchaseOption.ON_DEMAND)


class TestSimulationResult:
    def test_totals(self):
        res = result([record(carbon_g=500.0), record(job_id=1, carbon_g=1500.0)])
        assert res.total_carbon_g == 2000.0
        assert res.total_carbon_kg == 2.0

    def test_cost_composition(self):
        pricing = PricingModel()
        res = result([record(usage_cost=1.0)], reserved=10, horizon=60, pricing=pricing)
        upfront = pricing.reserved_upfront(10, 60)
        assert res.total_cost == pytest.approx(1.0 + upfront)
        assert res.metered_cost == 1.0
        assert res.reserved_upfront_cost == pytest.approx(upfront)

    def test_carbon_tax(self):
        pricing = PricingModel(carbon_price_per_kg=2.0)
        res = result([record(carbon_g=1000.0, usage_cost=0.0)], pricing=pricing)
        assert res.carbon_tax_cost == pytest.approx(2.0)
        assert res.total_cost == pytest.approx(2.0)

    def test_waiting_stats(self):
        records = [
            record(first_start=0, finish=60),
            record(job_id=1, first_start=60, finish=120, arrival=0, length=60),
        ]
        res = result(records)
        assert res.mean_waiting_minutes == 30.0
        assert res.total_waiting_hours == 1.0

    def test_reserved_utilization_clipped_at_horizon(self):
        usage = (UsageInterval(0, 200, 1, PurchaseOption.RESERVED),)
        res = result([record(finish=200, length=200, usage=usage)],
                     reserved=1, horizon=100)
        assert res.reserved_utilization == 1.0

    def test_zero_reserved_utilization(self):
        assert result([record()]).reserved_utilization == 0.0

    def test_savings_and_cost_comparisons(self):
        base = result([record(carbon_g=100.0, usage_cost=1.0)])
        better = result([record(carbon_g=60.0, usage_cost=1.2)])
        assert better.carbon_savings_vs(base) == pytest.approx(0.4)
        assert better.cost_increase_vs(base) == pytest.approx(0.2)

    def test_accepts_empty_records(self):
        # An idle cluster is a legal outcome: every aggregate is zero and
        # no numpy empty-mean warnings leak (see tests/simulator/
        # test_empty_workload.py for the end-to-end regression).
        res = result([])
        assert res.total_carbon_g == 0.0
        assert res.mean_waiting_minutes == 0.0
        assert res.summary()

    def test_summary_keys(self):
        summary = result([record()]).summary()
        for key in ("policy", "carbon_kg", "cost_usd", "mean_wait_h"):
            assert key in summary

    def test_eviction_aggregates(self):
        res = result([record(evictions=2, lost=120.0)])
        assert res.total_evictions == 2
        assert res.lost_cpu_hours == 2.0


class TestDemandProfile:
    def test_aggregate_and_filtered(self):
        usage = (
            UsageInterval(0, 10, 2, PurchaseOption.RESERVED),
            UsageInterval(10, 20, 2, PurchaseOption.ON_DEMAND),
        )
        records = [record(finish=20, length=20, usage=usage)]
        total = demand_profile(records, horizon=30)
        assert total[5] == 2 and total[15] == 2 and total[25] == 0
        reserved_only = demand_profile(records, horizon=30, option=PurchaseOption.RESERVED)
        assert reserved_only[5] == 2 and reserved_only[15] == 0

    def test_clips_past_horizon(self):
        usage = (UsageInterval(0, 100, 1, PurchaseOption.ON_DEMAND),)
        records = [record(finish=100, length=100, usage=usage)]
        profile = demand_profile(records, horizon=50)
        assert profile.size == 50
        assert profile[49] == 1
