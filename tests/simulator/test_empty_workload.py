"""Regression: zero-job workloads simulate, verify, and report cleanly.

An idle cluster is a legal scenario (the fuzzer can sample a horizon
with no arrivals); it must produce an empty, valid result without
numpy mean-of-empty warnings or division errors anywhere in the
pipeline.
"""

from __future__ import annotations

import warnings

import pytest

from repro.simulator.reference import run_reference
from repro.simulator.simulation import run_simulation
from repro.simulator.validation import assert_valid, verify_result
from repro.workload.trace import WorkloadTrace


@pytest.fixture
def empty_workload() -> WorkloadTrace:
    return WorkloadTrace([], name="empty")


@pytest.mark.filterwarnings("error")
def test_engine_accepts_zero_jobs(empty_workload, flat_carbon):
    result = run_simulation(empty_workload, flat_carbon, "carbon-time")
    assert len(result.records) == 0
    assert result.total_carbon_g == 0.0
    assert result.total_energy_kwh == 0.0
    assert result.metered_cost == 0.0


@pytest.mark.filterwarnings("error")
def test_reference_engine_accepts_zero_jobs(empty_workload, flat_carbon):
    result = run_reference(empty_workload, flat_carbon, "nowait")
    assert len(result.records) == 0


@pytest.mark.filterwarnings("error")
def test_verify_result_no_spurious_violations(empty_workload, flat_carbon):
    result = run_simulation(empty_workload, flat_carbon, "nowait", reserved_cpus=8)
    assert verify_result(result) == []
    assert_valid(result)


@pytest.mark.filterwarnings("error")
def test_analytics_are_warning_free(empty_workload, flat_carbon):
    result = run_simulation(empty_workload, flat_carbon, "nowait")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert result.mean_waiting_minutes == 0.0
        assert result.mean_completion_hours == 0.0
        assert result.waiting_percentiles((50, 95, 99)) == {50: 0.0, 95: 0.0, 99: 0.0}
        assert result.summary()  # every aggregate renders


@pytest.mark.filterwarnings("error")
def test_empty_trace_properties():
    trace = WorkloadTrace([], name="empty")
    assert len(trace) == 0
    assert trace.horizon == 0
    assert trace.total_cpu_minutes == 0.0
    assert trace.content_digest()  # digestible for the result cache
