"""Retry-backoff timing regressions: backoff must never stall dispatch.

Satellite 4: the dispatcher schedules a failed attempt's retry behind a
``ready_at`` gate instead of sleeping inline, so unrelated specs keep
executing while the gate is closed.  These tests pin that property with
wall-clock bounds (a reverted inline ``time.sleep`` makes them fail by
hundreds of milliseconds, far beyond the asserted margins) and unit-test
the poll-timeout arithmetic that implements it.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.faults import parse_fault_plan
from repro.obs.tracer import NULL_TRACER
from repro.simulator.runner import SimulationSpec, run_many
from repro.simulator.runner.execute import _Attempt, _Dispatcher, _retry_delay
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace


@pytest.fixture(scope="module")
def carbon():
    return CarbonIntensityTrace(np.linspace(110.0, 290.0, 48), name="ramp")


@pytest.fixture(scope="module")
def workload():
    jobs = [Job(job_id=i, arrival=i * 30, length=60, cpus=1) for i in range(4)]
    return WorkloadTrace(jobs, name="dispatch-timing")


def make_flaky_spec(workload, carbon, marker):
    plan = parse_fault_plan(f"worker-flaky:path={marker},times=1", seed=0)
    return SimulationSpec.build(workload, carbon, "nowait", fault_plan=plan)


class TestBackoffOffTheDispatchPath:
    def test_good_specs_complete_while_a_retry_gate_is_closed(
        self, tmp_path, workload, carbon
    ):
        """A flaky spec's ~0.5-1.0 s backoff gate must not delay the
        healthy spec behind it: with gated retries the healthy spec
        lands within milliseconds; an inline sleep would push it past
        the full backoff delay."""
        flaky = make_flaky_spec(workload, carbon, tmp_path / "marker")
        good = SimulationSpec.build(workload, carbon, "nowait", spot_seed=7)
        completion_times: dict[int, float] = {}

        start = time.monotonic()
        results = run_many(
            [flaky, good],
            jobs=1,
            use_cache=False,
            retries=1,
            backoff=0.5,
            backend="serial",
            on_result=lambda index, _spec, _result: completion_times.setdefault(
                index, time.monotonic() - start
            ),
        )
        assert all(result is not None for result in results)
        assert completion_times[1] < 0.4
        assert completion_times[0] >= _retry_delay(0.5, flaky.digest(), 1)

    def test_sweep_elapsed_is_one_gate_not_a_serial_sleep_chain(
        self, tmp_path, workload, carbon
    ):
        """Total wall time for [flaky, good, good] is bounded by the
        single retry delay plus a small dispatch margin -- the gate is
        waited out exactly once, concurrently with nothing."""
        flaky = make_flaky_spec(workload, carbon, tmp_path / "marker")
        goods = [
            SimulationSpec.build(workload, carbon, "nowait", spot_seed=seed)
            for seed in (11, 12)
        ]
        delay = _retry_delay(0.5, flaky.digest(), 1)

        start = time.monotonic()
        results = run_many(
            [flaky, *goods],
            jobs=1,
            use_cache=False,
            retries=1,
            backoff=0.5,
            backend="serial",
        )
        elapsed = time.monotonic() - start
        assert all(result is not None for result in results)
        assert delay <= elapsed < delay + 0.3


class _StubBackend:
    """Just enough backend surface for constructing a dispatcher."""

    def capacity(self):
        return 0

    def poll(self, timeout):
        return []


def make_dispatcher():
    return _Dispatcher(
        to_run=[],
        digests=[],
        backend=_StubBackend(),
        retries=1,
        timeout=None,
        backoff=0.5,
        tracer=NULL_TRACER,
    )


class TestPollTimeoutArithmetic:
    def test_earliest_backoff_gate_bounds_the_poll(self, workload, carbon):
        spec = SimulationSpec.build(workload, carbon, "nowait")
        dispatcher = make_dispatcher()
        now = time.monotonic()
        gated = _Attempt(index=0, spec=spec, digest="d0", ready_at=now + 5.0)
        dispatcher.pending = [gated]
        dispatcher.inflight = {
            0: (_Attempt(index=1, spec=spec, digest="d1"), now + 9.0)
        }
        timeout = dispatcher._poll_timeout()
        assert 4.5 < timeout <= 5.0

    def test_deadlines_alone_bound_the_poll(self, workload, carbon):
        spec = SimulationSpec.build(workload, carbon, "nowait")
        dispatcher = make_dispatcher()
        now = time.monotonic()
        dispatcher.inflight = {
            0: (_Attempt(index=0, spec=spec, digest="d0"), now + 2.0)
        }
        timeout = dispatcher._poll_timeout()
        assert 1.5 < timeout <= 2.0

    def test_unbounded_when_nothing_gates(self, workload, carbon):
        spec = SimulationSpec.build(workload, carbon, "nowait")
        dispatcher = make_dispatcher()
        dispatcher.inflight = {
            0: (_Attempt(index=0, spec=spec, digest="d0"), None)
        }
        assert dispatcher._poll_timeout() is None

    def test_expired_gates_do_not_produce_negative_timeouts(
        self, workload, carbon
    ):
        spec = SimulationSpec.build(workload, carbon, "nowait")
        dispatcher = make_dispatcher()
        now = time.monotonic()
        dispatcher.inflight = {
            0: (_Attempt(index=0, spec=spec, digest="d0"), now - 1.0)
        }
        assert dispatcher._poll_timeout() == 0.0
