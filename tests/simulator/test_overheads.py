"""Instance provisioning overhead accounting."""

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import SimulationError
from repro.simulator.simulation import run_simulation
from repro.units import days, hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace


def flat(value=100.0):
    return CarbonIntensityTrace(np.full(24 * 30, value), name="flat")


def single_queue():
    return QueueSet((JobQueue(name="q", max_length=days(3), max_wait=hours(6)),))


class TestProvisioningOverhead:
    def test_on_demand_pays_boot(self):
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=2)]
        plain = run_simulation(WorkloadTrace(jobs), flat(), "nowait", queues=single_queue())
        booted = run_simulation(
            WorkloadTrace(jobs), flat(), "nowait", queues=single_queue(),
            instance_overhead_minutes=3,
        )
        record = booted.records[0]
        assert record.provisioning_cpu_minutes == 6  # 3 min x 2 CPUs
        assert booted.metered_cost > plain.metered_cost
        assert booted.total_carbon_g > plain.total_carbon_g
        # Execution timing itself is unchanged (boot is accounted, not
        # simulated, matching the paper's normalized-metrics argument).
        assert record.finish == plain.records[0].finish

    def test_reserved_pays_no_boot(self):
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), flat(), "nowait", reserved_cpus=1,
            queues=single_queue(), instance_overhead_minutes=5,
        )
        assert result.records[0].provisioning_cpu_minutes == 0
        assert result.provisioning_cpu_hours == 0

    def test_suspend_resume_pays_per_segment(self):
        # A two-valley trace forces Wait Awhile into two segments -> two
        # instance launches, twice the boot overhead.
        day = np.full(24, 200.0)
        day[10] = 10.0
        day[14] = 20.0
        carbon = CarbonIntensityTrace(np.tile(day, 10))
        jobs = [Job(job_id=0, arrival=hours(9), length=120, cpus=1)]
        result = run_simulation(
            WorkloadTrace(jobs), carbon, "wait-awhile", queues=single_queue(),
            instance_overhead_minutes=4,
        )
        record = result.records[0]
        assert len(record.usage) == 2
        assert record.provisioning_cpu_minutes == 8

    def test_fragmentation_penalty_end_to_end(self):
        """With boot overheads, suspend-resume's fragmented demand costs
        more extra than a contiguous carbon-aware schedule's."""
        from repro.carbon.regions import region_trace
        from repro.workload.sampling import week_long_trace
        from repro.workload.synthetic import alibaba_like

        workload = week_long_trace(
            alibaba_like(6_000, horizon=days(40), seed=3), num_jobs=200
        )
        carbon = region_trace("SA-AU")

        def extra_cost(spec):
            plain = run_simulation(workload, carbon, spec)
            booted = run_simulation(
                workload, carbon, spec, instance_overhead_minutes=5
            )
            return booted.total_cost - plain.total_cost

        assert extra_cost("ecovisor") > extra_cost("carbon-time")

    def test_negative_overhead_rejected(self):
        jobs = [Job(job_id=0, arrival=0, length=60, cpus=1)]
        with pytest.raises(SimulationError):
            run_simulation(
                WorkloadTrace(jobs), flat(), "nowait", queues=single_queue(),
                instance_overhead_minutes=-1,
            )
