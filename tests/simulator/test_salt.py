"""Regression tests for the cache's code-version salt coverage.

The result cache keys on ``sha256(code_version_salt + spec.digest())``;
a package that shapes ``SimulationSpec.digest()`` semantics or the
simulated outcome but is missing from the salt silently serves stale
results after a semantic edit (the ``repro.faults`` bug this file
guards against).
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro
from repro.simulator.runner.cache import _SALTED_PACKAGES

REPRO_ROOT = Path(repro.__file__).resolve().parent

#: Modules whose semantics flow into spec digests and cached results:
#: the spec itself (digest / thaw / run), the simulation assembly, and
#: fault application (folded into digests via ``FaultPlan.digest``).
_DIGEST_SEED_MODULES = (
    "repro.simulator.runner.spec",
    "repro.simulator.simulation",
    "repro.faults.apply",
)


def _module_path(module: str) -> Path | None:
    """The source file of a ``repro.*`` dotted module, if it exists."""
    relative = Path(*module.split(".")[1:])
    for candidate in (
        REPRO_ROOT / relative.parent / f"{relative.name}.py",
        REPRO_ROOT / relative / "__init__.py",
    ):
        if candidate.is_file():
            return candidate
    return None


def _imported_repro_modules(path: Path) -> set[str]:
    """Every ``repro.*`` module imported anywhere in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    imported: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imported.update(
                alias.name for alias in node.names if alias.name.startswith("repro")
            )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module and node.module.startswith("repro"):
                imported.add(node.module)
                # ``from repro.x import y`` may name a submodule, not an
                # attribute; include the candidate so closure follows it.
                imported.update(f"{node.module}.{alias.name}" for alias in node.names)
    return imported


def _import_closure(seeds: tuple[str, ...]) -> set[str]:
    """Transitive ``repro.*`` import closure over the source tree."""
    seen: set[str] = set()
    frontier = [module for module in seeds if _module_path(module) is not None]
    while frontier:
        module = frontier.pop()
        if module in seen:
            continue
        path = _module_path(module)
        if path is None:
            continue
        seen.add(module)
        frontier.extend(_imported_repro_modules(path) - seen)
    return seen


class TestSaltCoverage:
    def test_every_digest_feeding_package_is_salted(self):
        closure = _import_closure(_DIGEST_SEED_MODULES)
        assert closure, "import closure unexpectedly empty"
        needed_packages = {
            module.split(".")[1]
            for module in closure
            if module.count(".") >= 2  # repro.<package>.<module>
        }
        missing = sorted(needed_packages - set(_SALTED_PACKAGES))
        assert not missing, (
            f"packages {missing} feed SimulationSpec.digest()/simulation "
            "semantics but are not in _SALTED_PACKAGES; stale cached results "
            "would survive semantic edits there"
        )

    def test_faults_package_is_salted(self):
        # The concrete historical bug: editing fault-application semantics
        # must evict cached results.
        assert "faults" in _SALTED_PACKAGES
