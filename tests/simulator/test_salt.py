"""Regression tests for the cache's code-version salt coverage.

The result cache keys on ``sha256(code_version_salt + spec.digest())``;
a package that shapes ``SimulationSpec.digest()`` semantics or the
simulated outcome but is missing from the salt silently serves stale
results after a semantic edit (the ``repro.faults`` bug this file
guards against).
"""

from __future__ import annotations

import ast
import shutil
from pathlib import Path

import pytest

import repro
from repro.simulator.runner.cache import (
    _SALTED_PACKAGES,
    _certified_salt,
    _fallback_salt,
    code_version_salt,
)

REPRO_ROOT = Path(repro.__file__).resolve().parent

#: Modules whose semantics flow into spec digests and cached results:
#: the spec itself (digest / thaw / run), the simulation assembly, and
#: fault application (folded into digests via ``FaultPlan.digest``).
_DIGEST_SEED_MODULES = (
    "repro.simulator.runner.spec",
    "repro.simulator.simulation",
    "repro.faults.apply",
)


def _module_path(module: str) -> Path | None:
    """The source file of a ``repro.*`` dotted module, if it exists."""
    relative = Path(*module.split(".")[1:])
    for candidate in (
        REPRO_ROOT / relative.parent / f"{relative.name}.py",
        REPRO_ROOT / relative / "__init__.py",
    ):
        if candidate.is_file():
            return candidate
    return None


def _imported_repro_modules(path: Path) -> set[str]:
    """Every ``repro.*`` module imported anywhere in one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    imported: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imported.update(
                alias.name for alias in node.names if alias.name.startswith("repro")
            )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module and node.module.startswith("repro"):
                imported.add(node.module)
                # ``from repro.x import y`` may name a submodule, not an
                # attribute; include the candidate so closure follows it.
                imported.update(f"{node.module}.{alias.name}" for alias in node.names)
    return imported


def _import_closure(seeds: tuple[str, ...]) -> set[str]:
    """Transitive ``repro.*`` import closure over the source tree."""
    seen: set[str] = set()
    frontier = [module for module in seeds if _module_path(module) is not None]
    while frontier:
        module = frontier.pop()
        if module in seen:
            continue
        path = _module_path(module)
        if path is None:
            continue
        seen.add(module)
        frontier.extend(_imported_repro_modules(path) - seen)
    return seen


class TestSaltCoverage:
    def test_every_digest_feeding_package_is_salted(self):
        closure = _import_closure(_DIGEST_SEED_MODULES)
        assert closure, "import closure unexpectedly empty"
        needed_packages = {
            module.split(".")[1]
            for module in closure
            if module.count(".") >= 2  # repro.<package>.<module>
        }
        missing = sorted(needed_packages - set(_SALTED_PACKAGES))
        assert not missing, (
            f"packages {missing} feed SimulationSpec.digest()/simulation "
            "semantics but are not in _SALTED_PACKAGES; stale cached results "
            "would survive semantic edits there"
        )

    def test_faults_package_is_salted(self):
        # The concrete historical bug: editing fault-application semantics
        # must evict cached results.
        assert "faults" in _SALTED_PACKAGES


@pytest.fixture(scope="module")
def repro_copy(tmp_path_factory) -> Path:
    """A private writable copy of the installed ``repro`` tree."""
    destination = tmp_path_factory.mktemp("salt") / "repro"
    shutil.copytree(REPRO_ROOT, destination, ignore=shutil.ignore_patterns("__pycache__"))
    return destination


def _edit(root: Path, relative: str, append: str) -> str:
    """Append text to a file under ``root``; return the original source."""
    path = root / relative
    original = path.read_text(encoding="utf-8")
    path.write_text(original + append, encoding="utf-8")
    return original


class TestCertifiedSalt:
    """The ISSUE acceptance criterion: the salt tracks semantics, not bytes."""

    def test_matches_installed_tree(self, repro_copy: Path):
        # The copy fingerprints identically to the installed sources, so
        # the edit tests below isolate exactly the edit's effect.
        assert _certified_salt(repro_copy) == _certified_salt(REPRO_ROOT)

    def test_comment_only_edit_to_engine_keeps_salt(self, repro_copy: Path):
        before = _certified_salt(repro_copy)
        original = _edit(
            repro_copy, "simulator/engine.py", "\n# a trailing comment, no semantics\n"
        )
        try:
            assert _certified_salt(repro_copy) == before
        finally:
            (repro_copy / "simulator/engine.py").write_text(
                original, encoding="utf-8"
            )

    def test_docstring_edit_to_engine_keeps_salt(self, repro_copy: Path):
        path = repro_copy / "simulator" / "engine.py"
        original = path.read_text(encoding="utf-8")
        assert original.startswith('"""')
        before = _certified_salt(repro_copy)
        path.write_text('"""Rewritten docstring."""' + original.split('"""', 2)[2],
                        encoding="utf-8")
        try:
            assert _certified_salt(repro_copy) == before
        finally:
            path.write_text(original, encoding="utf-8")

    def test_semantic_edit_to_faults_apply_changes_salt(self, repro_copy: Path):
        before = _certified_salt(repro_copy)
        original = _edit(repro_copy, "faults/apply.py", "\n_SALT_PROBE = 1\n")
        try:
            assert _certified_salt(repro_copy) != before
        finally:
            (repro_copy / "faults/apply.py").write_text(original, encoding="utf-8")

    def test_semantic_edit_to_engine_changes_salt(self, repro_copy: Path):
        before = _certified_salt(repro_copy)
        original = _edit(repro_copy, "simulator/engine.py", "\n_SALT_PROBE = 1\n")
        try:
            assert _certified_salt(repro_copy) != before
        finally:
            (repro_copy / "simulator/engine.py").write_text(
                original, encoding="utf-8"
            )

    def test_edit_outside_certified_set_keeps_salt(self, repro_copy: Path):
        # Experiment/figure scripts and the lint layer are not certified:
        # editing them must not evict warmed sweep caches.
        before = _certified_salt(repro_copy)
        originals = [
            (relative, _edit(repro_copy, relative, "\n_SALT_PROBE = 1\n"))
            for relative in ("experiments/registry.py", "lint/findings.py")
        ]
        try:
            assert _certified_salt(repro_copy) == before
        finally:
            for relative, original in originals:
                (repro_copy / relative).write_text(original, encoding="utf-8")

    def test_fallback_salt_is_byte_sensitive(self, repro_copy: Path):
        before = _fallback_salt(repro_copy)
        original = _edit(repro_copy, "simulator/engine.py", "\n# comment\n")
        try:
            assert _fallback_salt(repro_copy) != before
        finally:
            (repro_copy / "simulator/engine.py").write_text(
                original, encoding="utf-8"
            )

    def test_code_version_salt_falls_back_on_analysis_failure(self, monkeypatch):
        import repro.simulator.runner.cache as cache_module

        def boom(root: Path) -> str:
            raise RuntimeError("certification broke")

        monkeypatch.setattr(cache_module, "_certified_salt", boom)
        code_version_salt.cache_clear()
        try:
            assert code_version_salt() == _fallback_salt(REPRO_ROOT)
        finally:
            code_version_salt.cache_clear()

    def test_code_version_salt_is_certified_salt(self):
        code_version_salt.cache_clear()
        try:
            assert code_version_salt() == _certified_salt(REPRO_ROOT)
        finally:
            code_version_salt.cache_clear()
