"""Waiting percentiles, per-queue breakdowns, sparklines."""

import numpy as np
import pytest

from repro.analysis.report import sparkline
from repro.carbon.regions import region_trace
from repro.errors import ReproError
from repro.simulator.simulation import run_simulation
from repro.units import days
from repro.workload.sampling import week_long_trace
from repro.workload.synthetic import alibaba_like


@pytest.fixture(scope="module")
def result():
    workload = week_long_trace(
        alibaba_like(5_000, horizon=days(30), seed=8), num_jobs=200
    )
    return run_simulation(workload, region_trace("SA-AU"), "carbon-time")


class TestWaitingPercentiles:
    def test_monotone(self, result):
        percentiles = result.waiting_percentiles()
        assert percentiles[50] <= percentiles[90] <= percentiles[95] <= percentiles[99]

    def test_custom_points(self, result):
        assert set(result.waiting_percentiles((10, 50))) == {10, 50}

    def test_median_below_mean_for_skewed_waits(self, result):
        # Carbon-aware waiting is right-skewed (many immediate starts,
        # a tail of long delays): median < mean.
        assert result.waiting_percentiles()[50] <= result.mean_waiting_hours + 1e-9


class TestByQueue:
    def test_partitions_jobs(self, result):
        breakdown = result.by_queue()
        assert set(breakdown) == {"short", "long"}
        assert sum(group["jobs"] for group in breakdown.values()) == len(result.records)

    def test_carbon_partitions(self, result):
        breakdown = result.by_queue()
        total = sum(group["carbon_kg"] for group in breakdown.values())
        assert total == pytest.approx(result.total_carbon_kg)

    def test_short_queue_waits_less(self, result):
        # W_short = 6 h < W_long = 24 h, so the tail must be shorter.
        breakdown = result.by_queue()
        assert breakdown["short"]["p95_wait_h"] <= breakdown["long"]["p95_wait_h"] + 6


class TestSparkline:
    def test_length_capped_to_width(self):
        line = sparkline(np.arange(1000), width=50)
        assert len(line) == 50

    def test_short_series_kept(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            sparkline([])
