"""Golden federated scenarios: pinned ``FederatedResult.digest()`` values.

Mirrors ``tests/faults/test_golden.py``: three small deterministic
federated runs have their merged digests committed in
``golden/digests.json``.  A moved digest means federated behaviour
changed -- regenerate intentionally with::

    PYTHONPATH=src python -m tests.federation.test_golden
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.federation import FederatedRegion, make_selector, run_federated_simulation
from repro.units import days, hours
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

GOLDEN_PATH = Path(__file__).parent / "golden" / "digests.json"


def _workload() -> WorkloadTrace:
    jobs = [
        Job(job_id=0, arrival=0, length=60, cpus=1),
        Job(job_id=1, arrival=30, length=hours(4), cpus=2),
        Job(job_id=2, arrival=hours(2), length=hours(1), cpus=1),
        Job(job_id=3, arrival=hours(10), length=hours(12), cpus=4),
        Job(job_id=4, arrival=hours(30), length=90, cpus=1),
    ]
    return WorkloadTrace(jobs, name="golden-fed", horizon=days(2))


def _regions() -> list[FederatedRegion]:
    day = np.full(24, 100.0)
    day[10:16] = 20.0
    return [
        FederatedRegion("diurnal", CarbonIntensityTrace(np.tile(day, 14), name="diurnal")),
        FederatedRegion("flat", CarbonIntensityTrace(np.full(336, 90.0), name="flat")),
        FederatedRegion(
            "ramp",
            CarbonIntensityTrace(np.linspace(40.0, 400.0, 336), name="ramp"),
            reserved_cpus=4,
        ),
    ]


#: name -> zero-argument scenario runner (inputs rebuilt per call).
SCENARIOS = {
    "home-carbon-time": lambda: run_federated_simulation(
        _workload(), _regions(), make_selector("home", "diurnal"), "carbon-time"
    ),
    "greedy-spatial-migration": lambda: run_federated_simulation(
        _workload(),
        _regions(),
        make_selector("greedy-spatial"),
        "lowest-window",
        migration_minutes=90,
    ),
    "spatio-temporal-nowait": lambda: run_federated_simulation(
        _workload(),
        _regions(),
        make_selector("spatio-temporal"),
        "nowait",
        migration_minutes=30,
    ),
}


def compute_digests() -> dict[str, str]:
    return {name: runner().digest() for name, runner in sorted(SCENARIOS.items())}


class TestGoldenFederatedScenarios:
    @pytest.fixture(scope="class")
    def pinned(self) -> dict[str, str]:
        return json.loads(GOLDEN_PATH.read_text())

    def test_fixture_covers_exactly_the_scenarios(self, pinned):
        assert set(pinned) == set(SCENARIOS)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_digest_matches_pin(self, name, pinned):
        assert SCENARIOS[name]().digest() == pinned[name], (
            f"golden federated scenario {name!r} moved; if intentional, "
            "regenerate with: PYTHONPATH=src python -m tests.federation.test_golden"
        )


def _regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(compute_digests(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover - fixture regeneration entry
    _regenerate()
