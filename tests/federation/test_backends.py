"""Backend conformance for federated specs.

``FederatedSpec`` is a first-class ``run_many`` citizen: every
registered backend must produce digest parity with direct execution,
dedup in-batch duplicates, and execute zero engines on a warm cache --
the same contract ``tests/simulator/test_backends.py`` pins for plain
simulation specs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.federation import FederatedRegion, FederatedResult, FederatedSpec
from repro.simulator.runner import (
    ResultCache,
    RunStats,
    available_backends,
    execution_count,
    run_many,
)
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace


@pytest.fixture(params=sorted(available_backends()))
def backend(request):
    return request.param


@pytest.fixture(scope="module")
def workload():
    jobs = [Job(job_id=i, arrival=i * 30, length=60, cpus=1) for i in range(4)]
    return WorkloadTrace(jobs, name="fed-conformance")


@pytest.fixture(scope="module")
def regions():
    return [
        FederatedRegion(
            "ramp-up", CarbonIntensityTrace(np.linspace(100.0, 300.0, 48), name="ramp-up")
        ),
        FederatedRegion(
            "ramp-down",
            CarbonIntensityTrace(np.linspace(300.0, 100.0, 48), name="ramp-down"),
        ),
    ]


def make_spec(workload, regions, selector="greedy-spatial", migration=60, spot_seed=0):
    return FederatedSpec.build(
        workload,
        regions,
        selector,
        "carbon-time",
        migration_minutes=migration,
        spot_seed=spot_seed,
    )


def test_digests_match_direct_execution(backend, workload, regions):
    specs = [
        make_spec(workload, regions, selector=selector)
        for selector in ("home", "lowest-mean-ci", "greedy-spatial")
    ]
    results = run_many(specs, jobs=2, use_cache=False, backend=backend)
    assert all(isinstance(result, FederatedResult) for result in results)
    assert [result.digest() for result in results] == [
        spec.run().digest() for spec in specs
    ]


def test_in_batch_duplicates_execute_once(backend, workload, regions):
    stats = RunStats()
    results = run_many(
        [make_spec(workload, regions)] * 3,
        jobs=2,
        use_cache=False,
        stats=stats,
        backend=backend,
    )
    assert stats.executed == 1
    assert stats.deduplicated == 2
    assert all(result is results[0] for result in results)


def test_warm_cache_executes_zero_engines(backend, workload, regions):
    specs = [make_spec(workload, regions, spot_seed=index) for index in range(3)]
    cache = ResultCache()
    cold_stats, warm_stats = RunStats(), RunStats()
    run_many(specs, jobs=2, cache=cache, stats=cold_stats, backend=backend)
    executed_before = execution_count()
    warm = run_many(specs, jobs=2, cache=cache, stats=warm_stats, backend=backend)
    assert execution_count() == executed_before
    assert cold_stats.executed == len(specs)
    assert warm_stats.cache_hits == len(specs)
    assert warm_stats.executed == 0
    assert [result.digest() for result in warm] == [
        spec.run().digest() for spec in specs
    ]


def test_disk_cache_round_trips(workload, regions, tmp_path):
    spec = make_spec(workload, regions)
    first = ResultCache(disk_dir=tmp_path)
    run_many([spec], jobs=1, cache=first)
    # A fresh cache over the same directory must serve from disk.
    second = ResultCache(disk_dir=tmp_path)
    stats = RunStats()
    results = run_many([spec], jobs=1, cache=second, stats=stats)
    assert stats.executed == 0
    assert second.disk_hits == 1
    assert isinstance(results[0], FederatedResult)
    assert results[0].digest() == spec.run().digest()
