"""Hypothesis parity suite: the federated runner vs its scalar reference.

Random region counts, CI traces, selectors, and migration delays must
produce results the straight-line
:func:`repro.federation.reference.run_reference_federated` agrees with
under the differential contract (bit-exact schedules, tolerance-bounded
floats) -- and the federated-only ``migration-drop`` fault must break
that agreement whenever the delay matters.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carbon.synthetic import RegionProfile, generate_carbon_trace
from repro.difftest.federated import compare_federated
from repro.faults import parse_fault_plan
from repro.federation import (
    SELECTOR_SPECS,
    FederatedRegion,
    make_selector,
    run_federated_simulation,
    run_reference_federated,
)
from repro.units import hours
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

POLICIES = ("nowait", "carbon-time", "lowest-window", "wait-awhile")


@st.composite
def workloads(draw, max_jobs=6):
    num_jobs = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = [
        Job(
            job_id=job_id,
            arrival=draw(st.integers(min_value=0, max_value=hours(12))),
            length=draw(st.integers(min_value=1, max_value=hours(2))),
            cpus=draw(st.integers(min_value=1, max_value=4)),
        )
        for job_id in range(num_jobs)
    ]
    return WorkloadTrace(jobs, name="fed-parity")


@st.composite
def region_lists(draw, max_regions=3):
    count = draw(st.integers(min_value=1, max_value=max_regions))
    regions = []
    for index in range(count):
        profile = RegionProfile(
            name=f"fed-region-{index}",
            mean_ci=draw(st.floats(min_value=80.0, max_value=600.0)),
            diurnal_amplitude=draw(st.floats(min_value=0.0, max_value=0.6)),
            seasonal_amplitude=0.0,
            noise_sigma=draw(st.floats(min_value=0.0, max_value=0.2)),
        )
        trace = generate_carbon_trace(
            profile,
            num_hours=5 * 24,
            seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        )
        regions.append(
            FederatedRegion(
                name=profile.name,
                carbon=trace,
                reserved_cpus=draw(st.sampled_from((0, 0, 4, 16))),
            )
        )
    return regions


class TestReferenceParity:
    @given(
        workload=workloads(),
        regions=region_lists(),
        selector_spec=st.sampled_from(SELECTOR_SPECS),
        policy=st.sampled_from(POLICIES),
        migration=st.sampled_from((0, 0, 45, 120)),
    )
    @settings(max_examples=10, deadline=None, derandomize=True)
    def test_engines_agree(self, workload, regions, selector_spec, policy, migration):
        home = regions[0].name
        kwargs = dict(
            workload=workload,
            regions=regions,
            selector=make_selector(selector_spec, home),
            policy=policy,
            home=home,
            migration_minutes=migration,
        )
        optimized = run_federated_simulation(**kwargs)
        reference = run_reference_federated(**kwargs)
        diff = compare_federated(reference, optimized)
        assert diff.identical, diff.render()
        assert reference.placements == optimized.placements
        assert reference.migrated_jobs == optimized.migrated_jobs


class TestMigrationDropIsCaught:
    def test_dropped_delay_diverges_from_reference(self):
        """The latent-bug stand-in: an engine that forgets the migration
        delay must disagree with the reference whenever the delay moved
        any off-home arrival."""
        jobs = [Job(job_id=i, arrival=i * 20, length=90, cpus=2) for i in range(6)]
        workload = WorkloadTrace(jobs, name="fed-drop")
        regions = []
        for index, mean_ci in enumerate((400.0, 90.0)):
            profile = RegionProfile(
                name=f"drop-region-{index}",
                mean_ci=mean_ci,
                diurnal_amplitude=0.4,
                seasonal_amplitude=0.0,
                noise_sigma=0.0,
            )
            regions.append(
                FederatedRegion(
                    name=profile.name,
                    carbon=generate_carbon_trace(profile, num_hours=5 * 24, seed=index),
                )
            )
        kwargs = dict(
            workload=workload,
            regions=regions,
            selector=make_selector("lowest-mean-ci"),
            policy="carbon-time",
            home=regions[0].name,
            migration_minutes=240,
        )
        reference = run_reference_federated(**kwargs)
        # Every job prefers the low-CI second region, so the delay matters.
        assert reference.migrated_jobs == len(jobs)
        dropped = run_federated_simulation(
            **kwargs, fault_plan=parse_fault_plan("migration-drop", seed=0)
        )
        diff = compare_federated(reference, dropped)
        assert not diff.identical
        assert diff.render()
