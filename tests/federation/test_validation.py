"""Merged-accounting validation: the regression suite for the gap where
``FederatedResult`` never passed through ``verify_result``-style checks.

A routing bug could double-count a job, drop a region's accounting, or
report placements that do not match the executed schedules while every
per-region engine check still passed.  These tests pin that
:func:`repro.federation.validation.verify_federated_result` catches each
of those shapes and that ``run_federated_simulation`` validates by
default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import SimulationError
from repro.federation import (
    FederatedRegion,
    FederatedResult,
    assert_valid_federated,
    make_selector,
    run_federated_simulation,
    verify_federated_result,
)
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace


@pytest.fixture
def federated_result() -> FederatedResult:
    jobs = [Job(job_id=i, arrival=i * 15, length=45, cpus=1) for i in range(5)]
    workload = WorkloadTrace(jobs, name="validation")
    regions = [
        FederatedRegion("low", CarbonIntensityTrace(np.full(96, 80.0), name="low")),
        FederatedRegion("high", CarbonIntensityTrace(np.full(96, 400.0), name="high")),
    ]
    return run_federated_simulation(
        workload, regions, make_selector("lowest-mean-ci"), "nowait", home="high"
    )


def test_clean_run_validates(federated_result):
    assert verify_federated_result(federated_result) == []
    assert_valid_federated(federated_result)


def test_placement_count_mismatch_detected(federated_result):
    federated_result.placements["low"] += 1
    problems = verify_federated_result(federated_result)
    assert any("placements" in problem for problem in problems)
    with pytest.raises(SimulationError):
        assert_valid_federated(federated_result)


def test_dropped_region_accounting_detected(federated_result):
    name, result = next(iter(federated_result.per_region.items()))
    assert result.records, "fixture must place jobs in every region"
    del federated_result.per_region[name]
    problems = verify_federated_result(federated_result)
    assert any("no result" in problem for problem in problems)


def test_phantom_region_detected(federated_result):
    name, result = next(iter(federated_result.per_region.items()))
    federated_result.per_region["phantom"] = result
    problems = verify_federated_result(federated_result)
    assert any("unplaced" in problem for problem in problems)


def test_migrated_count_mismatch_detected(federated_result):
    federated_result.migrated_jobs += 1
    problems = verify_federated_result(federated_result)
    assert any("migrated" in problem for problem in problems)


def test_runner_validates_by_default(monkeypatch):
    """The simulation path itself rejects a corrupted merge: arm a fault
    that corrupts the routing bookkeeping and the run must raise."""
    from repro.federation import simulation as fed_simulation

    jobs = [Job(job_id=i, arrival=0, length=30, cpus=1) for i in range(3)]
    workload = WorkloadTrace(jobs, name="validate-default")
    regions = [
        FederatedRegion("only", CarbonIntensityTrace(np.full(96, 100.0), name="only")),
    ]

    original = fed_simulation.FederatedResult

    class CorruptedResult(original):
        @property
        def total_jobs(self) -> int:  # double-counts every record
            return 2 * super().total_jobs

    monkeypatch.setattr(fed_simulation, "FederatedResult", CorruptedResult)
    with pytest.raises(SimulationError):
        run_federated_simulation(
            workload, regions, make_selector("home", "only"), "nowait"
        )
    # The same corrupted merge sails through when validation is off --
    # exactly the latent gap the validator closes.
    run_federated_simulation(
        workload, regions, make_selector("home", "only"), "nowait", validate=False
    )
