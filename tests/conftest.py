"""Shared fixtures: small deterministic traces and cluster configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.carbon.trace import CarbonIntensityTrace
from repro.units import MINUTES_PER_HOUR, days, hours
from repro.workload.job import Job, JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace


@pytest.fixture
def flat_carbon() -> CarbonIntensityTrace:
    """Constant 100 g/kWh for 10 days."""
    return CarbonIntensityTrace(np.full(240, 100.0), name="flat")


@pytest.fixture
def diurnal_carbon() -> CarbonIntensityTrace:
    """Deterministic day cycle: 100 at night, dipping to 20 at hours 10-15."""
    day = np.full(24, 100.0)
    day[10:16] = 20.0
    return CarbonIntensityTrace(np.tile(day, 14), name="diurnal")


@pytest.fixture
def two_queue_set() -> QueueSet:
    """The paper's default short/long configuration with known averages."""
    return QueueSet(
        (
            JobQueue(name="short", max_length=hours(2), max_wait=hours(6), avg_length=60.0),
            JobQueue(name="long", max_length=days(3), max_wait=hours(24), avg_length=hours(8)),
        )
    )


@pytest.fixture
def tiny_workload() -> WorkloadTrace:
    """Five assorted jobs over two days."""
    jobs = [
        Job(job_id=0, arrival=0, length=60, cpus=1),
        Job(job_id=1, arrival=30, length=hours(4), cpus=2),
        Job(job_id=2, arrival=hours(2), length=hours(1), cpus=1),
        Job(job_id=3, arrival=hours(10), length=hours(12), cpus=4),
        Job(job_id=4, arrival=hours(30), length=90, cpus=1),
    ]
    return WorkloadTrace(jobs, name="tiny", horizon=days(2))


def make_job(job_id=0, arrival=0, length=60, cpus=1, queue="") -> Job:
    """Job factory with defaults, importable from tests."""
    return Job(job_id=job_id, arrival=arrival, length=length, cpus=cpus, queue=queue)


@pytest.fixture
def job_factory():
    return make_job


def hourly_steps(*values: float) -> CarbonIntensityTrace:
    """CI trace from explicit hourly values (importable helper)."""
    return CarbonIntensityTrace(np.array(values, dtype=float), name="steps")


assert MINUTES_PER_HOUR == 60
