"""Experiment registry smoke tests plus shape checks on the cheap ones.

The expensive figure experiments are exercised (with full shape
assertions) by the benchmark harness; here we verify the registry wiring
and the scale-independent experiments end to end at the small scale.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments.registry import EXPERIMENTS, run_experiment

CHEAP = ("fig01", "fig02", "fig05", "fig06", "fig07", "table1", "fig20",
         "fig08", "fig09", "headline")


class TestRegistry:
    def test_all_paper_figures_present(self):
        for eid in ("fig01", "fig02", "fig04", "fig05", "fig06", "fig07",
                    "fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
                    "fig20", "table1", "headline"):
            assert eid in EXPERIMENTS

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            run_experiment("fig99")


@pytest.mark.parametrize("eid", CHEAP)
def test_cheap_experiments_run(eid):
    result = run_experiment(eid, scale="small")
    assert result.rows
    assert result.render()


class TestShapeChecks:
    """Scale-independent shape assertions on the cheap experiments."""

    def test_fig01_variations(self):
        result = run_experiment("fig01", scale="small")
        swings = {row["region"]: row["daily_swing"] for row in result.rows}
        assert swings["CA-US"] > 2.0  # paper: 3.37x
        assert result.extras["spatial_variation"] > 4.0  # paper: up to 9x

    def test_fig02_tension(self):
        result = run_experiment("fig02", scale="small")
        ca = result.row_for("region", "CA-US")
        se = result.row_for("region", "SE")
        # California: sizable carbon cut at a large cost increase.
        assert ca["carbon_reduction_pct"] > 15
        assert ca["cost_increase_pct"] > 15
        assert ca["completion_increase_pct"] > 0
        # Sweden: little carbon to save, still pay the cost overhead.
        assert se["carbon_reduction_pct"] < ca["carbon_reduction_pct"] / 2
        assert se["cost_increase_pct"] > 15

    def test_fig06_categories(self):
        result = run_experiment("fig06", scale="small")
        means = result.column("mean_ci")
        assert means == sorted(means)  # ordered as in the paper's figure
        ky = result.row_for("region", "KY-US")
        se = result.row_for("region", "SE")
        assert ky["mean_ci"] / se["mean_ci"] > 9

    def test_fig07_sa_seasonality(self):
        result = run_experiment("fig07", scale="small")
        assert result.extras["sa_jul_dec_ratio"] > 1.5  # paper: ~2x

    def test_table1_knowledge_column(self):
        result = run_experiment("table1", scale="small")
        rows = {row["policy"]: row for row in result.rows}
        assert rows["Wait Awhile"]["job_length"] == "Yes"
        assert rows["Carbon-Time"]["performance_aware"] == "Yes"

    def test_fig20_weak_correlation(self):
        result = run_experiment("fig20", scale="small")
        assert abs(result.extras["correlation"] - 0.16) < 0.1
        conflict = result.row_for("metric", "conflicting_hours_fraction")["value"]
        assert conflict > 0.2
