"""Structural tests for the mid-weight figure experiments at small scale.

The benchmarks assert the paper's findings; these tests pin the *shape
of the output data* (row counts, columns, value domains) so refactors of
the experiment layer fail fast in the unit suite.
"""

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def fig04():
    return run_experiment("fig04", scale="small")


@pytest.fixture(scope="module")
def fig11():
    return run_experiment("fig11", scale="small")


@pytest.fixture(scope="module")
def fig12():
    return run_experiment("fig12", scale="small")


class TestFig04Structure:
    def test_columns(self, fig04):
        for column in ("reserved_cpus", "normalized_cost", "normalized_carbon",
                       "reserved_utilization", "regime"):
            assert column in fig04.rows[0]

    def test_anchor_row(self, fig04):
        assert fig04.rows[0]["reserved_cpus"] == 0
        assert fig04.rows[0]["normalized_cost"] == pytest.approx(1.0, abs=0.05)

    def test_regime_labels_valid(self, fig04):
        valid = {"1-no-tradeoff", "2-tradeoff", "3-excess"}
        assert set(fig04.column("regime")) <= valid

    def test_extras(self, fig04):
        assert fig04.extras["mean_demand"] > 0
        assert fig04.extras["knee_reserved"] >= 0


class TestFig11Structure:
    def test_sweep_monotone_in_reserved(self, fig11):
        reserved = fig11.column("reserved_cpus")
        assert reserved == sorted(reserved)
        assert reserved[0] == 0

    def test_utilization_in_unit_interval(self, fig11):
        assert all(0 <= row["reserved_util"] <= 1 for row in fig11.rows)

    def test_normalized_positive(self, fig11):
        assert all(row["normalized_cost"] > 0 for row in fig11.rows)
        assert all(0 < row["normalized_carbon"] <= 1.05 for row in fig11.rows)


class TestFig12Structure:
    def test_all_configs_present(self, fig12):
        assert len(fig12.rows) == 5
        assert any("Ecovisor" in row["config"] for row in fig12.rows)

    def test_normalization_anchored(self, fig12):
        assert max(fig12.column("normalized_carbon")) == pytest.approx(1.0)
        assert max(fig12.column("normalized_cost")) == pytest.approx(1.0)

    def test_render_includes_notes(self, fig12):
        assert "Spot-First" in fig12.render()
