"""Experiment scaffolding: scales and canonical inputs."""

import pytest

from repro.errors import ConfigError
from repro.experiments import setup
from repro.experiments.base import SCALES, ExperimentResult, current_scale


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"small", "medium", "large", "full"}

    def test_large_sits_between_medium_and_full(self):
        assert (
            SCALES["medium"].year_jobs
            < SCALES["large"].year_jobs
            < SCALES["full"].year_jobs
        )

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert current_scale("small").name == "small"

    def test_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert current_scale().name == "small"

    def test_default_medium(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "medium"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            current_scale("galactic")

    def test_full_is_paper_size(self):
        scale = SCALES["full"]
        assert scale.year_jobs == 100_000
        assert scale.year_days == 365


class TestCanonicalInputs:
    def test_week_workload_cached(self):
        a = setup.week_workload("alibaba", "small")
        b = setup.week_workload("alibaba", "small")
        assert a is b

    def test_week_workload_shape(self):
        trace = setup.week_workload("alibaba", "small")
        assert len(trace) == SCALES["small"].week_jobs
        assert trace.cpu_counts().max() <= 4

    def test_year_workload_shape(self):
        trace = setup.year_workload("azure", "small")
        assert len(trace) == SCALES["small"].year_jobs
        assert trace.horizon == SCALES["small"].year_days * 1440

    def test_unknown_family(self):
        with pytest.raises(ConfigError):
            setup.raw_trace("slurmtron", "small")

    def test_fine_grained_queues_boundaries(self):
        queues = setup.fine_grained_queues()
        bounds = [queue.max_length for queue in queues]
        assert bounds == sorted(bounds)
        assert bounds[0] == 120  # 2 h short queue
        assert queues.queues[0].max_wait == 360

    def test_carbon_for_regions(self):
        for region in setup.EVAL_REGIONS:
            assert setup.carbon_for(region).num_hours == 365 * 24


class TestExperimentResult:
    def test_render_and_lookup(self):
        result = ExperimentResult(
            experiment_id="x", title="T",
            rows=[{"k": "a", "v": 1.0}, {"k": "b", "v": 2.0}],
            notes="note",
        )
        text = result.render()
        assert "x: T" in text and "note" in text
        assert result.column("v") == [1.0, 2.0]
        assert result.row_for("k", "b")["v"] == 2.0
        with pytest.raises(KeyError):
            result.row_for("k", "missing")
