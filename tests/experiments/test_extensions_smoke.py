"""Smoke + shape tests for the cheap extension experiments.

The heavier ones (checkpointing, provisioning) are exercised with full
assertions by ``benchmarks/bench_extensions.py``.
"""

import pytest

from repro.experiments.registry import run_experiment


class TestSuspendResume:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-suspend-resume", scale="small")

    def test_rows(self, result):
        assert {row["policy"] for row in result.rows} == {
            "Lowest-Window", "GAIA-SR", "Ecovisor", "Wait Awhile",
        }

    def test_sr_beats_contiguous(self, result):
        rows = {row["policy"]: row for row in result.rows}
        assert rows["GAIA-SR"]["carbon_saving_pct"] > (
            rows["Lowest-Window"]["carbon_saving_pct"]
        )

    def test_exact_knowledge_still_best(self, result):
        rows = {row["policy"]: row for row in result.rows}
        assert rows["Wait Awhile"]["carbon_saving_pct"] == max(
            row["carbon_saving_pct"] for row in result.rows
        )


class TestArrivalPhase:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-arrival-phase", scale="small")

    def test_valley_arrivals_greener_baseline(self, result):
        rows = {row["arrivals"]: row for row in result.rows}
        assert rows["valley-peak (7h)"]["nowait_carbon_kg"] < (
            rows["ramp-peak (19h)"]["nowait_carbon_kg"]
        )

    def test_ramp_arrivals_leave_more_to_save(self, result):
        rows = {row["arrivals"]: row for row in result.rows}
        assert rows["ramp-peak (19h)"]["carbon_saving_pct"] > (
            rows["valley-peak (7h)"]["carbon_saving_pct"]
        )


class TestEnergyPrice:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-energy-price", scale="small")

    def test_frontier_extremes(self, result):
        rows = {row["policy"]: row for row in result.rows}
        assert rows["carbon-optimal"]["carbon_kg"] == min(
            row["carbon_kg"] for row in result.rows
        )
        assert rows["price-optimal"]["energy_cost_usd"] == min(
            row["energy_cost_usd"] for row in result.rows
        )


class TestSpatialSweeps:
    def test_federation_sweep_beats_home_baseline(self):
        result = run_experiment("sweep-federation", scale="small")
        rows = {(row["selector"], row["migration_min"]): row for row in result.rows}
        assert rows[("home", 0)]["migrated_jobs"] == 0
        assert rows[("spatio-temporal", 0)]["carbon_saving_pct"] > (
            rows[("home", 0)]["carbon_saving_pct"]
        )
        # A migration delay can only cost carbon, never save it.
        assert rows[("greedy-spatial", 60)]["carbon_kg"] >= (
            rows[("greedy-spatial", 0)]["carbon_kg"] - 1e-9
        )

    def test_scaling_sweep_orders_speedup_families(self):
        result = run_experiment("sweep-scaling", scale="small")
        savings = result.column("carbon_saving_pct")
        # linear >= amdahl-0.95 >= amdahl-0.90 >= amdahl-0.75
        assert savings == sorted(savings, reverse=True)
        assert all(saving > 0 for saving in savings)


class TestFederationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext-federation", scale="small")

    def test_spatial_beats_home(self, result):
        rows = {row["selector"]: row for row in result.rows}
        assert rows["spatio-temporal"]["carbon_saving_pct"] > (
            rows["home:CA-US"]["carbon_saving_pct"]
        )

    def test_placements_conserve_jobs(self, result):
        for row in result.rows:
            counts = [int(v) for v in row["placements"].split("/")]
            assert sum(counts) > 0
