#!/usr/bin/env python3
"""Geo-federated scheduling: add *where* to GAIA's *when*.

The paper exploits temporal carbon variation within one region and
leaves spatial shifting as future work.  This example runs the same
Alibaba-style week across a three-region federation under four
region-selection policies, each composed with the Carbon-Time temporal
policy, and prints carbon, waiting, and where the jobs landed.

Run:  python examples/federated_cluster.py
"""

from repro import (
    FederatedRegion,
    GreedySpatial,
    HomeRegion,
    SpatioTemporal,
    alibaba_like,
    region_trace,
    run_federated_simulation,
    week_long_trace,
)
from repro.analysis.report import render_table, sparkline
from repro.federation import LowestMeanCI


def main() -> None:
    workload = week_long_trace(alibaba_like(num_jobs=30_000, seed=1), num_jobs=1_000)
    regions = [
        FederatedRegion("CA-US", region_trace("CA-US")),
        FederatedRegion("SA-AU", region_trace("SA-AU")),
        FederatedRegion("ON-CA", region_trace("ON-CA")),
    ]
    print("first 3 days of carbon intensity per region:")
    for region in regions:
        line = sparkline(region.carbon.hourly[: 24 * 3], width=72)
        print(f"  {region.name:6s} {line}")
    print()

    rows = []
    for selector in (HomeRegion("CA-US"), LowestMeanCI(), GreedySpatial(),
                     SpatioTemporal()):
        result = run_federated_simulation(
            workload, regions, selector, "carbon-time", home="CA-US"
        )
        rows.append(
            {
                "selector": selector.name,
                "carbon_kg": result.total_carbon_kg,
                "mean_wait_h": result.mean_waiting_hours,
                "migrated": result.migrated_jobs,
                "CA-US/SA-AU/ON-CA": "/".join(
                    str(result.placements.get(r.name, 0)) for r in regions
                ),
            }
        )
    print(render_table(rows, title="Region selection x Carbon-Time (week trace)"))
    print()
    print("Static selection chases annual averages; per-job spatio-temporal")
    print("selection routes each job to whichever region offers the greenest")
    print("start within its waiting budget.")


if __name__ == "__main__":
    main()
