#!/usr/bin/env python3
"""The scaling modality: do more work when the grid is green.

Temporal shifting moves *when* a job runs; a malleable job can also vary
*how hard* it runs — more CPUs during carbon valleys, fewer (or none) on
the evening ramp.  This example plans a day of work for one malleable
job under increasing parallelism headroom, on a solar-heavy grid, and
prints the allocations against the carbon curve.

Run:  python examples/malleable_scaling.py
"""

from repro import (
    AmdahlSpeedup,
    MalleableJob,
    fixed_allocation_plan,
    plan_carbon_scaling,
    region_trace,
)
from repro.analysis.report import render_table, sparkline
from repro.units import hours


def main() -> None:
    carbon = region_trace("CA-US")
    job = MalleableJob(work=hours(24), max_cpus=8, arrival=0)  # a day of work
    deadline = hours(48)

    print("carbon intensity over the planning window:")
    print(f"  {sparkline(carbon.hourly[:48], width=48)}")
    print()

    baseline = fixed_allocation_plan(job, carbon, cpus=1)
    rows = [
        {
            "plan": "fixed 1 CPU (baseline)",
            "carbon_g": baseline.carbon_g,
            "saving_%": 0.0,
            "peak_cpus": 1,
            "finish_h": baseline.completion_minute / 60,
        }
    ]
    for max_cpus in (1, 2, 4, 8):
        scaled_job = MalleableJob(work=job.work, max_cpus=max_cpus, arrival=0)
        plan = plan_carbon_scaling(scaled_job, carbon, deadline)
        rows.append(
            {
                "plan": f"carbon-scaled, <= {max_cpus} CPUs",
                "carbon_g": plan.carbon_g,
                "saving_%": 100 * (1 - plan.carbon_g / baseline.carbon_g),
                "peak_cpus": plan.peak_cpus,
                "finish_h": plan.completion_minute / 60,
            }
        )
    amdahl = plan_carbon_scaling(
        MalleableJob(work=job.work, max_cpus=8, arrival=0), carbon, deadline,
        speedup=AmdahlSpeedup(0.9),
    )
    rows.append(
        {
            "plan": "carbon-scaled, <= 8 CPUs, Amdahl p=0.9",
            "carbon_g": amdahl.carbon_g,
            "saving_%": 100 * (1 - amdahl.carbon_g / baseline.carbon_g),
            "peak_cpus": amdahl.peak_cpus,
            "finish_h": amdahl.completion_minute / 60,
        }
    )
    print(render_table(rows, title="One day of work, 48 h deadline (CA-US)"))

    best = plan_carbon_scaling(
        MalleableJob(work=job.work, max_cpus=8, arrival=0), carbon, deadline
    )
    allocation = [0] * 48
    for start, end, cpus in best.allocation:
        for hour in range(start // 60, max(start // 60 + 1, end // 60)):
            allocation[hour] = cpus
    print()
    print("8-CPU plan's allocation over the window (CPUs per hour):")
    print(f"  {sparkline(allocation, width=48)}")
    print()
    print("The planner throttles up in the solar valleys and idles through")
    print("the evening carbon ramp; serial fractions (Amdahl) cap the gains.")


if __name__ == "__main__":
    main()
