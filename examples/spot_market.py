#!/usr/bin/env python3
"""Spot-market strategy: how much work to trust to evictable capacity.

Spot instances cost 20% of on-demand but can be revoked, losing all job
progress (no checkpointing, as in the paper's HPC setting).  This example
replays an Azure-style workload under Spot-First-Carbon-Time while
sweeping the largest job class routed to spot (J^max) against eviction
rates, reproducing the paper's Fig. 18 guidance: *use spot for short jobs
only* -- under real eviction rates, pushing long jobs to spot burns both
money and carbon on redone work.

Run:  python examples/spot_market.py
"""

from repro import HourlyHazard, NoEvictions, azure_like, region_trace, run_simulation
from repro.analysis.report import render_table
from repro.policies import CarbonTime, SpotFirst
from repro.units import days, hours
from repro.workload.job import JobQueue, QueueSet
from repro.workload.sampling import year_long_trace


def spot_queues() -> QueueSet:
    """Hour-granular queue bounds so J^max can move."""
    queues = [
        JobQueue(name=f"q{bound}h", max_length=hours(bound),
                 max_wait=hours(6 if bound <= 2 else 24))
        for bound in (2, 6, 12, 24)
    ]
    queues.append(JobQueue(name="qlong", max_length=days(3), max_wait=hours(24)))
    return QueueSet(tuple(queues))


def main() -> None:
    workload = year_long_trace(
        azure_like(num_jobs=30_000, seed=1), num_jobs=6_000, horizon=days(28)
    )
    carbon = region_trace("SA-AU")
    queues = spot_queues()
    baseline = run_simulation(workload, carbon, "nowait", queues=queues)

    rows = []
    for rate in (0.0, 0.05, 0.15):
        eviction = NoEvictions() if rate == 0 else HourlyHazard(rate)
        for jmax in (2, 6, 24):
            policy = SpotFirst(CarbonTime(), spot_max_length=hours(jmax))
            result = run_simulation(
                workload, carbon, policy, queues=queues, eviction_model=eviction
            )
            rows.append(
                {
                    "eviction_%/h": int(rate * 100),
                    "jmax_h": jmax,
                    "cost_vs_nowait": result.total_cost / baseline.total_cost,
                    "carbon_vs_nowait": result.total_carbon_kg / baseline.total_carbon_kg,
                    "evictions": result.total_evictions,
                    "lost_cpu_h": round(result.lost_cpu_hours),
                }
            )
    print(render_table(rows, title="Spot-First: J^max vs eviction rate (Azure, SA-AU)"))
    print()
    print("Without evictions, more spot is strictly cheaper at unchanged")
    print("carbon. Under real eviction rates, routing long jobs to spot")
    print("stops saving money and starts adding carbon: keep J^max small.")


if __name__ == "__main__":
    main()
