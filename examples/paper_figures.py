#!/usr/bin/env python3
"""Regenerate any of the paper's figures/tables from the command line.

Usage::

    python examples/paper_figures.py              # list experiments
    python examples/paper_figures.py fig11        # one figure
    python examples/paper_figures.py fig08 fig10 --scale small
    python examples/paper_figures.py --all --scale small --jobs 4

Scale: small (seconds), medium (default, minutes), full (the paper's
year x 100k configuration).  ``--jobs N`` fans each experiment's
simulation grid out over N worker processes; ``--no-cache`` disables
result reuse across runs.
"""

import argparse
import os
import sys
import time

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids, e.g. fig11")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--scale", choices=("small", "medium", "full"), default=None)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes per simulation sweep "
                             "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="re-run every simulation even when a cached "
                             "result exists")
    args = parser.parse_args(argv)

    # The experiment layer reads these when it submits sweeps.
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"

    targets = list(EXPERIMENTS) if args.all else args.experiments
    if not targets:
        print("available experiments:")
        for experiment_id in EXPERIMENTS:
            print(f"  {experiment_id}")
        return 0

    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2

    for experiment_id in targets:
        started = time.perf_counter()
        result = run_experiment(experiment_id, scale=args.scale)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
