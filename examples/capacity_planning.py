#!/usr/bin/env python3
"""Capacity planning: size a reserved pool on the carbon-cost frontier.

An operator committing to 3-year reserved instances faces the paper's
Fig. 11 question: how many to buy?  This example sweeps the pool size for
a work-conserving carbon-aware scheduler, prints the frontier with the
paper's Fig. 4 regime labels, and recommends the cost knee plus a
"greener" alternative a few instances below it (the paper's Section 7
guidance: reserve between the base and the mean demand).

Run:  python examples/capacity_planning.py
"""

from repro import DEFAULT_PRICING, alibaba_like, region_trace, week_long_trace
from repro.analysis.report import render_table
from repro.analysis.tradeoff import classify_regimes, knee_point, reserved_sweep


def main() -> None:
    workload = week_long_trace(alibaba_like(num_jobs=30_000, seed=1), num_jobs=1_000)
    carbon = region_trace("SA-AU")
    mean_demand = workload.mean_demand
    print(f"mean demand: {mean_demand:.1f} CPUs "
          f"(demand CoV {workload.demand_cov():.2f})")

    fractions = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0)
    values = sorted({int(round(mean_demand * f)) for f in fractions})
    points = reserved_sweep(workload, carbon, "res-first:carbon-time", values)
    labels = classify_regimes(points, DEFAULT_PRICING.breakeven_utilization())

    rows = [
        {
            "reserved": point.reserved_cpus,
            "cost_vs_on_demand": point.normalized_cost,
            "carbon_vs_nowait": point.normalized_carbon,
            "mean_wait_h": point.mean_wait_hours,
            "utilization": point.reserved_utilization,
            "regime": label,
        }
        for point, label in zip(points, labels)
    ]
    print()
    print(render_table(rows, title="Reserved-pool frontier (RES-First-Carbon-Time)"))

    knee = knee_point(points)
    greener = [p for p in points if p.reserved_cpus < knee.reserved_cpus]
    print()
    print(f"cost knee: {knee.reserved_cpus} reserved CPUs "
          f"({100 * (1 - knee.normalized_cost):.0f}% cheaper than on-demand, "
          f"{100 * (1 - knee.normalized_carbon):.0f}% carbon saving)")
    if greener:
        alt = greener[-1]
        extra_cost = 100 * (alt.normalized_cost - knee.normalized_cost)
        extra_saving = 100 * (knee.normalized_carbon - alt.normalized_carbon)
        print(f"greener option: {alt.reserved_cpus} reserved CPUs buys "
              f"{extra_saving:.0f}pp more carbon saving for {extra_cost:.0f}pp "
              f"more cost (the paper's Fig. 11 dial)")


if __name__ == "__main__":
    main()
