#!/usr/bin/env python3
"""Drive the always-on scheduler service over its HTTP API.

Starts the service in-process (ephemeral port), streams a morning of
job submissions through the async client, shows an admission rejection,
lets simulated time pass, reads live accounting and metrics, drains for
the authoritative result, and shuts down cleanly -- the full lifecycle
of ``docs/service.md`` in one script.

The punchline at the end is the equivalence guarantee: the drained
digest equals a batch run of the same jobs under the same
configuration, bit for bit.

Run:  python examples/service_demo.py
"""

import asyncio

from repro.service import SchedulerService, ServiceClient, ServiceConfig, ServiceServer
from repro.workload.trace import WorkloadTrace

#: (length minutes, cpus, arrival minute) -- a small streaming morning.
ARRIVALS = [
    (120, 2, 0),     # a 2-hour render at midnight
    (45, 1, 30),     # a quick report
    (300, 4, 60),    # a wide training job
    (600, 1, 90),    # a long analysis (routed to the long queue)
    (15, 1, 120),    # a smoke test
    (180, 2, 180),   # another render
]


async def main() -> None:
    config = ServiceConfig(
        policy="carbon-time",
        region="SA-AU",
        horizon_days=2.0,
        workload_name="service-demo",
    )

    # 1. Start the scheduler and its HTTP front end on an ephemeral port.
    service = SchedulerService(config)
    await service.start()
    server = ServiceServer(service, port=0)
    host, port = await server.start()
    client = ServiceClient(host, port)
    health = await client.health()
    print(f"service up at http://{host}:{port}: "
          f"{health['policy']} on {health['region']}")

    # 2. Stream submissions; each response carries the policy's plan.
    for length, cpus, arrival in ARRIVALS:
        job = await client.submit(length=length, cpus=cpus, arrival=arrival)
        print(f"  job {job['job_id']}: {length:>3} min x{cpus} "
              f"arriving {arrival:>3} -> queue={job['queue']} "
              f"planned_start={job['planned_start']}")

    # 3. A submission the admission controller refuses (too wide).
    try:
        await client.submit(length=60, cpus=10_000)
    except Exception as error:
        print(f"  rejected as expected: {error}")

    # 4. Let half a day of simulated time pass; due starts/finishes fire.
    advanced = await client.advance_to(12 * 60)
    print(f"clock advanced to minute {advanced['now']} "
          f"({advanced['pending_events']} events still pending)")

    # 5. Live accounting over finished jobs (engine formulas, pre-drain).
    accounting = await client.accounting(detail=True)
    print(f"live accounting: {accounting['totals']['jobs']:.0f} finished, "
          f"{accounting['totals']['carbon_g']:.1f} gCO2, "
          f"${accounting['totals']['cost_usd']:.2f}")
    metrics = await client.metrics()
    print(f"metrics: {metrics['gauges']['service.jobs_finished']:.0f} finished / "
          f"{metrics['counters']['service.jobs_admitted']:.0f} admitted")

    # 6. Drain: the authoritative result and its digest.
    drained = await client.drain()
    print(f"drained at minute {drained['now']}: {drained['jobs']} jobs, "
          f"digest {drained['digest'][:16]}...")

    # 7. Clean shutdown; the server task unwinds with no leftovers.
    await client.shutdown()
    await server.serve_until_shutdown()
    leaked = [task for task in asyncio.all_tasks()
              if task is not asyncio.current_task()]
    assert not leaked, f"shutdown leaked tasks: {leaked}"
    print("service stopped (no tasks left behind)")

    # 8. The equivalence guarantee: a batch run of the same jobs under
    #    the same config produces the same digest, bit for bit.
    from repro.workload.job import Job

    jobs = [
        Job(job_id=i, arrival=arrival, length=length, cpus=cpus)
        for i, (length, cpus, arrival) in enumerate(ARRIVALS)
    ]
    trace = WorkloadTrace(jobs, name=config.workload_name,
                          horizon=config.horizon_minutes)
    batch_digest = config.engine(trace).run().digest()
    assert batch_digest == drained["digest"], "online/batch digests diverged!"
    print(f"batch replay digest matches: {batch_digest[:16]}... "
          "(online == batch, bit for bit)")


if __name__ == "__main__":
    asyncio.run(main())
