#!/usr/bin/env python3
"""Region selection: where does temporal shifting actually pay off?

Carbon-aware scheduling only helps where carbon intensity *varies*: this
example replays the same workload under Carbon-Time in every evaluation
region and reports both the relative and the absolute savings --
reproducing the paper's Fig. 15/16 insight that normalized percentages
mislead (a flat coal grid saves ~nothing relatively, yet its absolute kg
can match a clean region's).

Run:  python examples/region_selection.py
"""

from repro import alibaba_like, region_trace, run_simulation
from repro.analysis.report import render_table
from repro.carbon.regions import PAPER_REGIONS
from repro.units import days
from repro.workload.sampling import year_long_trace


def main() -> None:
    workload = year_long_trace(
        alibaba_like(num_jobs=30_000, seed=1), num_jobs=6_000, horizon=days(28)
    )
    rows = []
    for region in PAPER_REGIONS:
        carbon = region_trace(region)
        baseline = run_simulation(workload, carbon, "nowait")
        aware = run_simulation(workload, carbon, "carbon-time")
        rows.append(
            {
                "region": region,
                "mean_ci_g_per_kwh": float(carbon.hourly.mean()),
                "baseline_kg": baseline.total_carbon_kg,
                "saving_%": 100 * aware.carbon_savings_vs(baseline),
                "saved_kg": baseline.total_carbon_kg - aware.total_carbon_kg,
                "mean_wait_h": aware.mean_waiting_hours,
            }
        )
    print(render_table(rows, title="Carbon-Time savings by region (4-week replay)"))
    print()
    print("Waiting time is region-independent; savings are not. Percentages")
    print("favour variable grids (SA-AU); absolute kg can favour dirtier")
    print("ones -- judge migrations by total reduction, not ratios.")


if __name__ == "__main__":
    main()
