#!/usr/bin/env python3
"""Private clouds: when the carbon schedule fights the energy bill.

A private-cloud operator pays wholesale electricity prices rather than
instance-hours; the paper's Section 7 shows ERCOT's prices correlate
with grid carbon at only ~0.16, so optimizing one objective is not
optimizing the other.  This example sweeps the carbon/price weight of
the WeightedCarbonPrice policy on a synthetic ERCOT-like grid and prints
the resulting frontier.

Run:  python examples/private_cloud_pricing.py
"""

from repro import alibaba_like, region_trace, run_simulation, week_long_trace
from repro.analysis.metrics import energy_cost_usd
from repro.analysis.report import render_table
from repro.carbon.price import correlated_price_trace, realized_correlation
from repro.policies import PriceAware, WeightedCarbonPrice


def main() -> None:
    workload = week_long_trace(alibaba_like(num_jobs=30_000, seed=1), num_jobs=1_000)
    carbon = region_trace("TX-US")
    price = correlated_price_trace(carbon, target_correlation=0.16, seed=0)
    print(f"price/carbon correlation: {realized_correlation(carbon, price):.3f} "
          "(paper reports 0.16 for ERCOT 2022)")
    print()

    rows = []
    baseline = run_simulation(workload, carbon, "nowait", price_trace=price)
    configs = [("nowait", None)] + [
        (f"weight={w}", WeightedCarbonPrice(w)) for w in (1.0, 0.75, 0.5, 0.25)
    ] + [("price-only", PriceAware())]
    for label, policy in configs:
        result = (
            baseline if policy is None
            else run_simulation(workload, carbon, policy, price_trace=price)
        )
        rows.append(
            {
                "schedule": label,
                "carbon_kg": result.total_carbon_kg,
                "carbon_saving_%": 100 * result.carbon_savings_vs(baseline),
                "energy_cost_usd": energy_cost_usd(result, price),
                "mean_wait_h": result.mean_waiting_hours,
            }
        )
    print(render_table(rows, title="Carbon/energy-cost frontier (TX-US-like grid)"))
    print()
    print("Sliding the weight from carbon to price walks the frontier the")
    print("paper's Fig. 20 implies: on weakly correlated grids you must pick")
    print("a point; a carbon tax would fold the two objectives into one.")


if __name__ == "__main__":
    main()
