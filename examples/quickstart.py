#!/usr/bin/env python3
"""Quickstart: schedule a week of batch jobs carbon-aware, three ways.

Builds a week-long Alibaba-style workload, replays it in South Australia
(the most variable grid of the paper's regions) under three policies,
and prints the carbon / cost / waiting trade-off each one picks:

* ``nowait``               -- run everything on arrival (the baseline)
* ``carbon-time``          -- GAIA's carbon+performance-aware start times
* ``res-first:carbon-time``-- the same, work-conserving over a pre-paid
                              reserved pool sized to half the mean demand

Run:  python examples/quickstart.py
"""

from repro import alibaba_like, region_trace, run_simulation, week_long_trace
from repro.analysis.report import render_table


def main() -> None:
    # 1. Workload: sample a 1 000-job week from a synthetic "original"
    #    trace shaped like Alibaba-PAI (the paper's Section 6.1 pipeline).
    raw = alibaba_like(num_jobs=30_000, seed=1)
    workload = week_long_trace(raw, num_jobs=1_000)
    print(f"workload: {len(workload)} jobs, mean demand "
          f"{workload.mean_demand:.1f} CPUs over {workload.horizon // 1440} days")

    # 2. Carbon intensity: a year of hourly data for South Australia.
    carbon = region_trace("SA-AU")

    # 3. Replay under each policy and compare.
    reserved = int(workload.mean_demand / 2)
    runs = [
        ("nowait", 0),
        ("carbon-time", 0),
        ("res-first:carbon-time", reserved),
    ]
    baseline = None
    rows = []
    for spec, pool in runs:
        result = run_simulation(workload, carbon, spec, reserved_cpus=pool)
        baseline = baseline or result
        rows.append(
            {
                "policy": result.policy_name,
                "reserved": pool,
                "carbon_kg": result.total_carbon_kg,
                "carbon_saving_%": 100 * result.carbon_savings_vs(baseline),
                "cost_usd": result.total_cost,
                "cost_change_%": 100 * result.cost_increase_vs(baseline),
                "mean_wait_h": result.mean_waiting_hours,
            }
        )
    print()
    print(render_table(rows, title="Carbon / cost / waiting trade-off (SA-AU)"))
    print()
    print("Carbon-Time buys carbon savings with waiting time; adding a")
    print("work-conserving reserved pool buys the cost back at some of the")
    print("carbon savings -- the paper's three-way trade-off in one table.")


if __name__ == "__main__":
    main()
