"""Fig. 1 -- temporal and spatial carbon-intensity variation."""


def test_fig01(regenerate):
    result = regenerate("fig01")
    swings = {row["region"]: row["daily_swing"] for row in result.rows}
    # Paper: California swings 3.37x within a day; Ontario/NL less extreme
    # but visible; regions spread up to 9x apart.
    assert swings["CA-US"] > 2.5
    assert all(swing > 1.2 for swing in swings.values())
    assert result.extras["spatial_variation"] > 4.0
    means = {row["region"]: row["mean_ci"] for row in result.rows}
    assert means["ON-CA"] < means["CA-US"] < means["NL"]
