"""Table 1 -- policy capability summary."""


def test_table1(regenerate):
    result = regenerate("table1")
    rows = {row["policy"]: row for row in result.rows}
    assert len(result.rows) == 7

    # The paper's knowledge/awareness matrix.
    assert rows["NoWait"]["carbon_aware"] == "-"
    assert rows["AllWait-Threshold"]["carbon_aware"] == "-"
    assert rows["Wait Awhile"]["job_length"] == "Yes"
    assert rows["Ecovisor"]["job_length"] == "-"
    assert rows["Lowest-Slot"]["job_length"] == "-"
    assert rows["Lowest-Window"]["job_length"] == "J_avg"
    assert rows["Carbon-Time"]["job_length"] == "J_avg"
    assert rows["Carbon-Time"]["performance_aware"] == "Yes"
    carbon_aware = [p for p, row in rows.items() if row["carbon_aware"] == "Yes"]
    assert set(carbon_aware) == {
        "Wait Awhile", "Ecovisor", "Lowest-Slot", "Lowest-Window", "Carbon-Time",
    }
