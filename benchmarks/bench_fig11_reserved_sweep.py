"""Fig. 11 -- the reserved-capacity dial of RES-First-Carbon-Time."""


def test_fig11(regenerate):
    result = regenerate("fig11")
    costs = result.column("normalized_cost")
    carbons = result.column("normalized_carbon")
    waits = result.column("mean_wait_h")

    # Cost: U-shaped with an interior knee well below the on-demand
    # baseline (paper: ~55% cost saving near the mean demand).
    knee_index = costs.index(min(costs))
    assert 0 < knee_index < len(costs) - 1
    assert min(costs) < 0.8

    # Carbon: savings shrink monotonically as the pool grows, from the
    # carbon-optimal zero-reserved point toward ~NoWait.
    assert carbons == sorted(carbons)
    assert carbons[0] < 0.9
    assert carbons[-1] > 0.95

    # Waiting strictly decreases with pool size (paper's last finding).
    assert all(b <= a + 1e-9 for a, b in zip(waits, waits[1:]))
    assert waits[-1] < waits[0] / 4
