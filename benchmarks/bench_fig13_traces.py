"""Fig. 13 -- carbon/waiting trade-off across the three workload traces."""


def test_fig13(regenerate):
    result = regenerate("fig13")

    def row(trace, policy):
        return next(
            r for r in result.rows if r["trace"] == trace and r["policy"] == policy
        )

    # Wait Awhile saves the most carbon on every trace.
    for trace in ("mustang", "alibaba", "azure"):
        wait_awhile = row(trace, "Wait Awhile")["normalized_carbon"]
        for policy in ("Lowest-Window", "Carbon-Time", "Ecovisor"):
            assert wait_awhile <= row(trace, policy)["normalized_carbon"] + 1e-9

    # Mustang (jobs <= 16 h) saves more than Azure (multi-day jobs that
    # straddle CI cycles), under every policy.
    for policy in ("Lowest-Window", "Carbon-Time", "Ecovisor", "Wait Awhile"):
        assert row("mustang", policy)["carbon_saving_pct"] > (
            row("azure", policy)["carbon_saving_pct"]
        )

    # Lowest-Window retains a larger share of Wait Awhile's savings on
    # Mustang (representative averages) than on Azure (variable lengths);
    # paper: 68% vs 44%.
    mustang_retention = (
        row("mustang", "Lowest-Window")["carbon_saving_pct"]
        / row("mustang", "Wait Awhile")["carbon_saving_pct"]
    )
    azure_retention = (
        row("azure", "Lowest-Window")["carbon_saving_pct"]
        / row("azure", "Wait Awhile")["carbon_saving_pct"]
    )
    assert mustang_retention > azure_retention

    # Carbon-Time waits ~20% less than Lowest-Window at similar carbon.
    for trace in ("mustang", "alibaba", "azure"):
        assert row(trace, "Carbon-Time")["mean_wait_h"] < (
            0.95 * row(trace, "Lowest-Window")["mean_wait_h"]
        )
        assert row(trace, "Carbon-Time")["normalized_carbon"] < (
            row(trace, "Lowest-Window")["normalized_carbon"] * 1.10
        )
