"""Fig. 19 -- spot + reserved under a 10%/h eviction rate."""


def test_fig19(regenerate):
    result = regenerate("fig19")

    def series(jmax):
        return sorted(
            (row for row in result.rows if row["jmax_h"] == jmax),
            key=lambda row: row["reserved_cpus"],
        )

    for jmax in (0, 2, 6, 12):
        rows = series(jmax)
        costs = [row["normalized_cost"] for row in rows]
        carbons = [row["normalized_carbon"] for row in rows]
        # Same U-ish cost trend across J^max: the knee is interior or at
        # the mean-demand end, and far below the on-demand baseline.
        assert min(costs) < 0.7
        assert costs.index(min(costs)) >= len(costs) - 3
        # Carbon savings shrink as reserved capacity grows (small slack:
        # eviction randomness can wiggle adjacent points).
        assert all(b >= a - 0.005 for a, b in zip(carbons, carbons[1:]))
        assert carbons[-1] > carbons[0]

    # At the cost knee, routing more demand to spot (larger J^max)
    # retains more carbon savings (paper: 7% at J^max=12 vs 5.5% at 6).
    def knee_carbon(jmax):
        rows = series(jmax)
        return min(rows, key=lambda row: row["normalized_cost"])["normalized_carbon"]

    assert knee_carbon(12) < knee_carbon(0)
    assert knee_carbon(6) < knee_carbon(0)
