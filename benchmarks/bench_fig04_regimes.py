"""Fig. 4 -- reserved-capacity operating regimes."""


def test_fig04(regenerate):
    result = regenerate("fig04")
    labels = result.column("regime")
    costs = result.column("normalized_cost")
    carbons = result.column("normalized_carbon")

    # The sweep visits regime 2 and ends in regime 3 (below break-even).
    assert "2-tradeoff" in labels
    assert labels[-1] == "3-excess"
    # Regimes appear in order: never back from excess to no-tradeoff.
    order = {"1-no-tradeoff": 1, "2-tradeoff": 2, "3-excess": 3}
    ranks = [order[label] for label in labels]
    assert ranks == sorted(ranks)
    # Carbon savings shrink monotonically as the pool grows.
    assert carbons == sorted(carbons)
    # Cost falls into a knee near the mean demand then rises again.
    knee_index = costs.index(min(costs))
    assert 0 < knee_index < len(costs) - 1
    assert result.extras["knee_reserved"] <= result.extras["mean_demand"] * 1.6
