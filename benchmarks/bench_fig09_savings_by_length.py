"""Fig. 9 -- which job lengths contribute the carbon savings."""


def test_fig09(regenerate):
    result = regenerate("fig09")

    shares = {row["job_length<="]: row["savings_share"] for row in result.rows}
    # Paper: <=1 h jobs are ~half the job count but only ~10% of savings.
    one_hour = result.row_for("job_length<=", "1h")
    assert one_hour["job_share"] > 0.3
    assert one_hour["savings_share"] < 0.25

    # Paper: 3-12 h jobs contribute the bulk (~50%) of savings.
    assert result.extras["medium_share"] > 0.35

    # Paper: >24 h jobs contribute little (~7.5%) -- they straddle the
    # diurnal CI cycle.
    assert result.extras["long_share"] < 0.2

    # CDF sanity: monotone non-decreasing in length.
    values = result.column("savings_share")
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    assert abs(shares["3d"] - 1.0) < 1e-6
