"""Ablations beyond the paper: forecast noise, search granularity,
carbon-tax pricing."""


def test_forecast_noise(regenerate):
    result = regenerate("ablation-forecast")
    savings = result.column("carbon_saving_pct")
    # Perfect forecasts are the upper bound; heavy noise erodes savings
    # but the policy degrades gracefully (still clearly positive).
    assert savings[0] == max(savings)
    assert savings[-1] > 0.5 * savings[0]


def test_granularity(regenerate):
    result = regenerate("ablation-granularity")
    savings = {row["granularity_min"]: row["carbon_saving_pct"] for row in result.rows}
    # Hourly candidates already capture nearly all the savings of
    # minute-exact search (CI is piecewise-constant per hour).
    assert savings[60] > 0.95 * savings[1]
    # The default (5 min) is within a fraction of a percent of exact.
    assert abs(savings[5] - savings[1]) < 1.0


def test_carbon_tax(regenerate):
    result = regenerate("ablation-carbon-tax")
    rows = sorted(result.rows, key=lambda row: row["carbon_price_usd_per_kg"])
    # A carbon price widens the carbon-aware policy's cost advantage: the
    # gap (agnostic - aware) grows with the carbon price.
    gaps = [row["agnostic_cost"] - row["aware_cost"] for row in rows]
    assert gaps == sorted(gaps)
    # Carbon savings themselves are price-independent (same schedule).
    savings = {row["carbon_saving_pct"] for row in rows}
    assert max(savings) - min(savings) < 1e-9
