#!/usr/bin/env python3
"""Benchmark smoke: time representative sweeps, emit ``BENCH_sweep.json``.

Runs each experiment twice through the batch runner -- a cold pass that
executes simulations and a warm pass that should be served from the
result cache -- and records machine-readable wall times and cache-hit
counts so CI builds a perf trajectory across PRs::

    python benchmarks/sweep_smoke.py --jobs 2 --scale small

Output shape (``BENCH_sweep.json``)::

    {"meta": {"jobs": 2, "scale": "small"},
     "experiments": {"fig08": {"cold_s": 1.9, "warm_s": 0.02,
                               "cold_cache_hits": 0, "warm_cache_hits": 6}}}

Regression gate
---------------
``--check-regression BASELINE.json`` compares two already-written
reports without running any sweeps: the candidate named by ``--output``
against the baseline (typically the committed ``BENCH_sweep.json``).
An experiment regresses when its candidate ``cold_s`` exceeds both
``baseline * (1 + --max-regression)`` and ``baseline + --noise-floor``
(the absolute floor keeps sub-100ms experiments from tripping the gate
on scheduler jitter).  CI runs the sweeps into a scratch file and then
invokes this mode against the committed baseline::

    python benchmarks/sweep_smoke.py --jobs 2 --scale small --output bench_new.json
    python benchmarks/sweep_smoke.py --check-regression BENCH_sweep.json \
        --output bench_new.json
"""

from __future__ import annotations

import argparse
import json
import os
import time

DEFAULT_EXPERIMENTS = ("fig08", "fig16", "ablation-granularity")


def check_regression(candidate_path: str, baseline_path: str,
                     max_regression: float, noise_floor: float) -> int:
    """Compare cold wall times and return a process exit code."""
    with open(candidate_path) as handle:
        candidate = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)

    if candidate.get("meta") != baseline.get("meta"):
        print(f"note: meta differs (candidate {candidate.get('meta')}, "
              f"baseline {baseline.get('meta')}); comparing anyway")

    regressions = []
    for experiment_id, timings in candidate.get("experiments", {}).items():
        base = baseline.get("experiments", {}).get(experiment_id)
        if base is None:
            print(f"{experiment_id}: no baseline entry, skipping")
            continue
        old, new = float(base["cold_s"]), float(timings["cold_s"])
        limit = max(old * (1.0 + max_regression), old + noise_floor)
        verdict = "REGRESSED" if new > limit else "ok"
        print(f"{experiment_id}: cold {old:.3f}s -> {new:.3f}s "
              f"(limit {limit:.3f}s) {verdict}")
        if new > limit:
            regressions.append(experiment_id)

    if regressions:
        print(f"cold-time regression (> {max_regression:.0%} over baseline) "
              f"in: {', '.join(regressions)}")
        return 1
    print("no cold-time regressions")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=None,
                        help=f"experiment ids (default: {' '.join(DEFAULT_EXPERIMENTS)})")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes per sweep")
    parser.add_argument("--scale", choices=("small", "medium", "large", "full"),
                        default="small")
    parser.add_argument("--output", default="BENCH_sweep.json")
    parser.add_argument("--check-regression", metavar="BASELINE", default=None,
                        help="compare --output against this baseline report "
                             "instead of running sweeps")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional cold-time slowdown (default 0.25)")
    parser.add_argument("--noise-floor", type=float, default=0.05,
                        help="absolute slowdown in seconds always tolerated "
                             "(default 0.05)")
    args = parser.parse_args(argv)

    if args.check_regression is not None:
        return check_regression(args.output, args.check_regression,
                                args.max_regression, args.noise_floor)

    os.environ["REPRO_JOBS"] = str(args.jobs)
    from repro.experiments.registry import run_experiment
    from repro.simulator.runner import default_cache

    cache = default_cache()
    report: dict[str, dict[str, float | int]] = {}
    for experiment_id in args.experiments or DEFAULT_EXPERIMENTS:
        timings = {}
        for phase in ("cold", "warm"):
            hits_before = cache.hits
            started = time.perf_counter()
            run_experiment(experiment_id, scale=args.scale)
            timings[f"{phase}_s"] = round(time.perf_counter() - started, 3)
            timings[f"{phase}_cache_hits"] = cache.hits - hits_before
        report[experiment_id] = timings
        print(f"{experiment_id}: cold {timings['cold_s']}s "
              f"({timings['cold_cache_hits']} hits), "
              f"warm {timings['warm_s']}s ({timings['warm_cache_hits']} hits)")

    payload = {
        "meta": {"jobs": args.jobs, "scale": args.scale},
        "experiments": report,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    stale = [
        experiment_id
        for experiment_id, timings in report.items()
        if timings["warm_cache_hits"] == 0
    ]
    if stale:
        print(f"warm pass missed the cache for: {', '.join(stale)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
