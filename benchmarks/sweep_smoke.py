#!/usr/bin/env python3
"""Benchmark smoke: time representative sweeps, emit ``BENCH_sweep.json``.

Runs each experiment twice through the batch runner -- a cold pass that
executes simulations and a warm pass that should be served from the
result cache -- and records machine-readable wall times and cache-hit
counts so CI builds a perf trajectory across PRs::

    python benchmarks/sweep_smoke.py --jobs 2 --scale small

Output shape (``BENCH_sweep.json``)::

    {"meta": {"jobs": 2, "scale": "small"},
     "experiments": {"fig08": {"cold_s": 1.9, "warm_s": 0.02,
                               "cold_cache_hits": 0, "warm_cache_hits": 6}}}
"""

from __future__ import annotations

import argparse
import json
import os
import time

DEFAULT_EXPERIMENTS = ("fig08", "fig16", "ablation-granularity")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=None,
                        help=f"experiment ids (default: {' '.join(DEFAULT_EXPERIMENTS)})")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes per sweep")
    parser.add_argument("--scale", choices=("small", "medium", "full"), default="small")
    parser.add_argument("--output", default="BENCH_sweep.json")
    args = parser.parse_args(argv)

    os.environ["REPRO_JOBS"] = str(args.jobs)
    from repro.experiments.registry import run_experiment
    from repro.simulator.runner import default_cache

    cache = default_cache()
    report: dict[str, dict[str, float | int]] = {}
    for experiment_id in args.experiments or DEFAULT_EXPERIMENTS:
        timings = {}
        for phase in ("cold", "warm"):
            hits_before = cache.hits
            started = time.perf_counter()
            run_experiment(experiment_id, scale=args.scale)
            timings[f"{phase}_s"] = round(time.perf_counter() - started, 3)
            timings[f"{phase}_cache_hits"] = cache.hits - hits_before
        report[experiment_id] = timings
        print(f"{experiment_id}: cold {timings['cold_s']}s "
              f"({timings['cold_cache_hits']} hits), "
              f"warm {timings['warm_s']}s ({timings['warm_cache_hits']} hits)")

    payload = {
        "meta": {"jobs": args.jobs, "scale": args.scale},
        "experiments": report,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    stale = [
        experiment_id
        for experiment_id, timings in report.items()
        if timings["warm_cache_hits"] == 0
    ]
    if stale:
        print(f"warm pass missed the cache for: {', '.join(stale)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
