"""Fig. 12 -- spot and spot+reserved purchase-option combinations."""


def test_fig12(regenerate):
    result = regenerate("fig12")
    rows = {row["config"]: row for row in result.rows}
    carbon_time = rows["Carbon-Time (0)"]
    spot_first = rows["Spot-First-Carbon-Time (0)"]
    spot_res9 = rows["Spot-RES-Carbon-Time (9)"]
    spot_res6 = rows["Spot-RES-Carbon-Time (6)"]

    # Spot-First keeps the carbon-aware schedule (identical carbon, since
    # evictions never fire here) at a lower cost (paper: ~17% cheaper).
    assert spot_first["normalized_carbon"] == carbon_time["normalized_carbon"]
    assert spot_first["normalized_cost"] < carbon_time["normalized_cost"]

    # Adding reserved capacity re-introduces the dial: 9 reserved is
    # cheaper but dirtier than 6 reserved, which is cheaper but dirtier
    # than pure spot.
    assert spot_res9["normalized_cost"] < spot_res6["normalized_cost"]
    assert spot_res9["normalized_carbon"] > spot_res6["normalized_carbon"]
    assert spot_res6["normalized_cost"] < spot_first["normalized_cost"]
    assert spot_res6["normalized_carbon"] > spot_first["normalized_carbon"]
