"""Fig. 16 -- normalized vs total carbon savings across regions."""


def test_fig16(regenerate):
    result = regenerate("fig16")
    rows = {row["region"]: row for row in result.rows}

    # Normalized savings: SA-AU the best ratio, KY-US the worst.
    assert rows["SA-AU"]["normalized_carbon"] == min(
        row["normalized_carbon"] for row in result.rows
    )
    assert rows["KY-US"]["normalized_carbon"] == max(
        row["normalized_carbon"] for row in result.rows
    )

    # The paper's point: total kg and normalized % rank regions
    # differently. ON-CA has clean energy (small baseline) so its total
    # saved kg is small despite a decent percentage; a dirty region can
    # save as many absolute kg at a tiny percentage.
    on_ca = rows["ON-CA"]
    ky = rows["KY-US"]
    assert on_ca["normalized_carbon"] < ky["normalized_carbon"]  # better %
    assert on_ca["saved_kg"] < 3 * ky["saved_kg"]  # comparable absolute kg

    # Every region still saves something in absolute terms.
    assert all(row["saved_kg"] > 0 for row in result.rows)
