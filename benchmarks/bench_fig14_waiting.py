"""Fig. 14 -- saved carbon per waiting hour vs the waiting limits."""


def test_fig14(regenerate):
    result = regenerate("fig14")

    def series(sweep, policy):
        return [
            row for row in result.rows
            if row["sweep"] == sweep and row["policy"] == policy
        ]

    # Extending W_short dilutes savings-per-waiting-hour (short jobs
    # dominate waiting, barely move carbon).
    for policy in ("Lowest-Window", "Carbon-Time"):
        per_hour = [row["saved_g_per_wait_h"] for row in series("W_short", policy)]
        assert per_hour[-1] < per_hour[0]
        # ... while total carbon savings barely grow.
        totals = [row["carbon_saving_pct"] for row in series("W_short", policy)]
        assert totals[-1] - totals[0] < 10

    # Extending W_long grows total savings but with diminishing returns.
    for policy in ("Lowest-Window", "Carbon-Time"):
        rows = series("W_long", policy)
        totals = [row["carbon_saving_pct"] for row in rows]
        assert totals[-1] > totals[0]
        first_gain = totals[1] - totals[0]
        last_gain = totals[-1] - totals[-2]
        assert last_gain < first_gain

    # Carbon-Time dominates Lowest-Window on savings-per-waiting-hour at
    # every configuration (the paper's 80-90% savings at 20-30% less wait).
    for sweep in ("W_short", "W_long"):
        lowest = series(sweep, "Lowest-Window")
        carbon_time = series(sweep, "Carbon-Time")
        for lw_row, ct_row in zip(lowest, carbon_time):
            assert ct_row["saved_g_per_wait_h"] >= lw_row["saved_g_per_wait_h"]
