"""Fig. 15 -- normalized carbon savings across geographic regions."""


def test_fig15(regenerate):
    result = regenerate("fig15")

    def saving(region, trace):
        return next(
            r for r in result.rows if r["region"] == region and r["trace"] == trace
        )["carbon_saving_pct"]

    for trace in ("mustang", "alibaba", "azure"):
        # South Australia (largest CI variation) yields the biggest
        # relative savings; Kentucky (flat coal grid) nearly none.
        savings = {
            region: saving(region, trace)
            for region in ("SA-AU", "ON-CA", "CA-US", "NL", "KY-US")
        }
        assert savings["SA-AU"] == max(savings.values())
        assert savings["KY-US"] == min(savings.values())
        assert savings["KY-US"] < 5.0  # paper: ~1%

    # Waiting time is essentially region-independent (paper: identical).
    assert max(result.extras["wait_spread"].values()) < 0.15
