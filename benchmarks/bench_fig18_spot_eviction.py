"""Fig. 18 -- how far to push spot under evictions (J^max sweep)."""


def test_fig18(regenerate):
    result = regenerate("fig18")

    def series(rate):
        return sorted(
            (row for row in result.rows if row["eviction_rate"] == rate),
            key=lambda row: row["jmax_h"],
        )

    # Without evictions: extending J^max is strictly cheaper at flat carbon.
    no_evict = series(0.0)
    costs = [row["normalized_cost"] for row in no_evict]
    assert costs == sorted(costs, reverse=True)
    carbons = {row["normalized_carbon"] for row in no_evict}
    assert max(carbons) - min(carbons) < 1e-9
    assert all(row["evictions"] == 0 for row in no_evict)

    # With 15%/h evictions: pushing J^max past ~6 h buys (almost) no cost
    # and strictly adds carbon (paper: up to +12%).
    harsh = series(0.15)
    by_jmax = {row["jmax_h"]: row for row in harsh}
    assert by_jmax[24]["normalized_cost"] > by_jmax[6]["normalized_cost"] - 0.02
    assert by_jmax[24]["normalized_carbon"] > by_jmax[6]["normalized_carbon"] + 0.05
    # Carbon strictly increases with J^max once evictions bite.
    harsh_carbons = [row["normalized_carbon"] for row in harsh]
    assert harsh_carbons == sorted(harsh_carbons)

    # More evictions -> more lost work at every J^max.
    for jmax in (6, 12, 24):
        lost = [
            next(r for r in series(rate) if r["jmax_h"] == jmax)["lost_cpu_h"]
            for rate in (0.0, 0.05, 0.10, 0.15)
        ]
        assert lost == sorted(lost)
