"""Fig. 6 -- carbon intensity levels across the six cloud regions."""


def test_fig06(regenerate):
    result = regenerate("fig06")
    rows = {row["region"]: row for row in result.rows}

    # Paper order: SE < ON-CA < SA-AU < CA-US < NL < KY-US in mean CI.
    means = result.column("mean_ci")
    assert means == sorted(means)

    # Category labels.
    assert rows["SE"]["level"] == "Low" and rows["SE"]["variability"] == "Stable"
    assert rows["KY-US"]["level"] == "High" and rows["KY-US"]["variability"] == "Stable"
    assert rows["SA-AU"]["variability"] == "Variable"

    # SA-AU has the largest relative variation; KY-US the smallest.
    covs = {row["region"]: row["cov"] for row in result.rows}
    assert covs["SA-AU"] == max(covs.values())
    assert covs["KY-US"] == min(covs.values())
