"""Fig. 20 -- carbon intensity vs electricity price (ERCOT-like)."""


def test_fig20(regenerate):
    result = regenerate("fig20")

    # Paper: 2022 ERCOT CI and price correlate at only ~0.16.
    assert abs(result.extras["correlation"] - 0.16) < 0.1

    # Many hours conflict (green but expensive, or cheap but dirty).
    conflict = result.row_for("metric", "conflicting_hours_fraction")["value"]
    assert conflict > 0.2

    # ... but on some days the valleys align (the paper's first day):
    # carbon-aware scheduling is *sometimes* free, never always.
    aligned = result.extras["aligned_fraction"]
    assert 0.05 < aligned < 0.95
