"""Fig. 17 -- reserved-pool economics across workload traces."""


def test_fig17(regenerate):
    result = regenerate("fig17")

    def row(trace, policy):
        return next(
            r for r in result.rows if r["trace"] == trace and r["policy"] == policy
        )

    for trace in ("mustang", "alibaba", "azure"):
        allwait = row(trace, "AllWait-Threshold")
        ecovisor = row(trace, "Ecovisor")
        carbon_time = row(trace, "Carbon-Time")
        gaia = row(trace, "RES-First-Carbon-Time")

        # AllWait: cheapest and dirtiest.
        assert allwait["normalized_cost"] == min(
            r["normalized_cost"] for r in result.rows if r["trace"] == trace
        )
        assert allwait["normalized_carbon"] == 1.0

        # Carbon-aware suspend/contiguous policies pay the most.
        assert max(ecovisor["normalized_cost"], carbon_time["normalized_cost"]) == max(
            r["normalized_cost"] for r in result.rows if r["trace"] == trace
        )

        # RES-First bridges: near AllWait's cost (paper: within ~9%),
        # saving real carbon vs AllWait.
        assert gaia["normalized_cost"] < carbon_time["normalized_cost"]
        assert gaia["normalized_cost"] < allwait["normalized_cost"] * 1.35
        assert gaia["normalized_carbon"] < allwait["normalized_carbon"]

    # Demand variability: lumpy Mustang keeps more scheduling flexibility
    # (more carbon saving under RES-First) than smooth Azure.
    mustang_gaia = row("mustang", "RES-First-Carbon-Time")
    azure_gaia = row("azure", "RES-First-Carbon-Time")
    assert mustang_gaia["demand_cov"] > azure_gaia["demand_cov"]
    assert mustang_gaia["normalized_carbon"] < azure_gaia["normalized_carbon"]
