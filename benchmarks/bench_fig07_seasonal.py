"""Fig. 7 -- monthly carbon-intensity variation, CA-US vs SA-AU."""


def test_fig07(regenerate):
    result = regenerate("fig07")
    assert len(result.rows) == 12

    # Paper: South Australia's CI nearly doubles between July and December.
    assert result.extras["sa_jul_dec_ratio"] > 1.5

    sa = result.column("SA-AU")
    # Southern-hemisphere seasonality: mid-year trough, year-end peak.
    assert min(sa) == min(sa[4:9])   # trough around May-Sep
    assert max(sa) in (*sa[:2], *sa[10:])  # peak around the year ends
