"""Benchmark harness plumbing.

Each benchmark regenerates one of the paper's figures/tables via
``repro.experiments``, times it with pytest-benchmark, writes the
rendered table to ``benchmarks/output/<id>.txt``, prints it (visible
with ``-s``), and asserts the *shape* of the paper's findings -- who
wins, in which direction, roughly by how much -- rather than absolute
numbers (the substrate is a simulator over synthetic traces, not the
authors' testbed).

Scale follows ``REPRO_SCALE`` (small/medium/full, default medium).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.registry import run_experiment

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def regenerate(benchmark):
    """Run an experiment under the benchmark timer and persist its table."""

    def _run(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment, args=(experiment_id,), rounds=1, iterations=1
        )
        OUTPUT_DIR.mkdir(exist_ok=True)
        text = result.render()
        (OUTPUT_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        print(f"\n{text}\n")
        return result

    return _run


def scale_name() -> str:
    return os.environ.get("REPRO_SCALE", "medium")
