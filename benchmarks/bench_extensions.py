"""Future-work extensions beyond the paper's evaluation."""


def test_ext_suspend_resume(regenerate):
    result = regenerate("ext-suspend-resume")
    rows = {row["policy"]: row for row in result.rows}
    # GAIA-SR beats the contiguous Lowest-Window on carbon with the same
    # (queue-average) knowledge...
    assert rows["GAIA-SR"]["carbon_saving_pct"] > (
        rows["Lowest-Window"]["carbon_saving_pct"]
    )
    # ... and closes most of the gap to exact-knowledge Wait Awhile.
    gap_contiguous = (
        rows["Wait Awhile"]["carbon_saving_pct"]
        - rows["Lowest-Window"]["carbon_saving_pct"]
    )
    gap_sr = (
        rows["Wait Awhile"]["carbon_saving_pct"] - rows["GAIA-SR"]["carbon_saving_pct"]
    )
    assert gap_sr < 0.75 * gap_contiguous
    # Suspension costs waiting, as the paper predicts for this extension.
    assert rows["GAIA-SR"]["mean_wait_h"] > rows["Lowest-Window"]["mean_wait_h"] * 0.9


def test_ext_checkpointing(regenerate):
    result = regenerate("ext-checkpointing")
    for row in result.rows:
        # Checkpoints shrink redone work; dramatically so for long jobs
        # (many checkpoints fit), modestly for <=2 h jobs.
        ratio = 0.6 if row["jmax_h"] <= 2 else 0.4
        assert row["ckpt_lost_h"] < ratio * max(row["plain_lost_h"], 1e-9)
    # ... so large J^max keeps paying where plain spot stalls (Fig. 18's
    # conclusion reverses).
    by_jmax = {row["jmax_h"]: row for row in result.rows}
    assert by_jmax[24]["ckpt_cost"] < by_jmax[6]["ckpt_cost"]
    assert by_jmax[24]["ckpt_cost"] < by_jmax[24]["plain_cost"]
    assert by_jmax[24]["ckpt_carbon"] < by_jmax[24]["plain_carbon"]


def test_ext_federation(regenerate):
    result = regenerate("ext-federation")
    rows = {row["selector"]: row for row in result.rows}
    home = rows["home:CA-US"]
    joint = rows["spatio-temporal"]
    greedy = rows["greedy-spatial"]
    # Spatial freedom adds savings over staying home with the same
    # temporal policy.
    assert joint["carbon_saving_pct"] > home["carbon_saving_pct"]
    assert joint["migrated_jobs"] > 0
    # Joint (spatio-temporal) selection is at least as good as greedy
    # immediate-window selection.
    assert joint["carbon_saving_pct"] >= greedy["carbon_saving_pct"] - 0.5


def test_ext_arrival_phase(regenerate):
    result = regenerate("ext-arrival-phase")
    rows = {row["arrivals"]: row for row in result.rows}
    valley = rows["valley-peak (7h)"]
    ramp = rows["ramp-peak (19h)"]
    # Arrivals peaking in the grid's CI valley are green by default...
    assert valley["nowait_carbon_kg"] < ramp["nowait_carbon_kg"]
    # ... leaving less for the scheduler; ramp-phased arrivals leave more.
    assert valley["carbon_saving_pct"] < ramp["carbon_saving_pct"]


def test_ext_energy_price(regenerate):
    result = regenerate("ext-energy-price")
    rows = {row["policy"]: row for row in result.rows}
    # Each extreme wins its own objective...
    assert rows["carbon-optimal"]["carbon_kg"] == min(
        row["carbon_kg"] for row in result.rows
    )
    # Price-optimal wins its objective up to length-estimation noise (it
    # optimizes forecast windows at the queue-average length, while the
    # realized bill uses true lengths).
    cheapest = min(row["energy_cost_usd"] for row in result.rows)
    assert rows["price-optimal"]["energy_cost_usd"] <= cheapest * 1.03
    # ... and they genuinely diverge on a weakly correlated grid: the
    # carbon-optimal schedule pays more for energy than the price-optimal
    # one, which in turn emits more carbon.
    assert rows["carbon-optimal"]["energy_cost_usd"] > (
        rows["price-optimal"]["energy_cost_usd"]
    )
    assert rows["price-optimal"]["carbon_kg"] > rows["carbon-optimal"]["carbon_kg"]
    # The weighted policy sits on the frontier between them.
    weighted = rows["weighted-0.5"]
    assert rows["carbon-optimal"]["carbon_kg"] <= weighted["carbon_kg"] <= (
        rows["price-optimal"]["carbon_kg"]
    )


def test_ext_scaling(regenerate):
    result = regenerate("ext-scaling")

    def saving(max_cpus, speedup):
        return next(
            row for row in result.rows
            if row["max_cpus"] == max_cpus and row["speedup"] == speedup
        )["carbon_saving_pct"]

    # Scaling headroom strictly adds savings over pure temporal shifting.
    linear = [saving(k, "linear") for k in (1, 2, 4, 8)]
    assert all(b > a for a, b in zip(linear, linear[1:]))
    # Amdahl-limited jobs capture less of the scaling benefit.
    for max_cpus in (2, 4, 8):
        assert saving(max_cpus, "amdahl-0.9") < saving(max_cpus, "linear")
    # Even pure temporal shifting (the degenerate case) saves plenty.
    assert linear[0] > 10


def test_ext_provisioning(regenerate):
    result = regenerate("ext-provisioning")
    rows = {row["policy"]: row for row in result.rows}
    # Suspend-resume fragmentation multiplies instance launches: its boot
    # overhead exceeds the uninterruptible carbon-aware policy's.
    assert rows["Ecovisor"]["cost_overhead_pct"] > rows["Carbon-Time"]["cost_overhead_pct"]
    assert rows["Wait Awhile"]["boot_cpu_h"] > rows["NoWait"]["boot_cpu_h"]
    # Everyone pays something.
    assert all(row["cost_overhead_pct"] > 0 for row in result.rows)
