"""Abstract / Section 6.3 -- the paper's headline claims.

"Compared to existing carbon-aware scheduling policies, our proposed
policies can double the amount of carbon savings per percentage increase
in cost, while decreasing the performance overhead by 26%."
"""

import math


def test_headline(regenerate):
    result = regenerate("headline")

    # GAIA's cost-aware policies at least double the carbon savings per
    # percent of cost relative to the best prior carbon-aware policy.
    # (In this setting they often come out *cheaper* than the baseline
    # while still saving carbon, i.e. an infinite ratio.)
    improvement = result.extras["improvement"]
    assert math.isinf(improvement) or improvement >= 2.0

    # Carbon-Time cuts mean waiting by >= 26% vs Wait Awhile.
    assert result.extras["wait_cut"] >= 0.26

    # Sanity on the underlying rows: the prior policies do save carbon,
    # at a real cost increase.
    for policy in ("Wait Awhile", "Ecovisor"):
        row = result.row_for("policy", policy)
        assert row["carbon_saving_pct"] > 10
        assert row["cost_increase_pct"] > 0
