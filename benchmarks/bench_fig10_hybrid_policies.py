"""Fig. 10 -- carbon/cost/waiting across policies on 9 reserved CPUs."""


def test_fig10(regenerate):
    result = regenerate("fig10")
    rows = {row["policy"]: row for row in result.rows}

    # NoWait: highest carbon.
    assert rows["NoWait"]["normalized_carbon"] == 1.0

    # AllWait-Threshold: the cheapest, and among the longest waits.
    assert rows["AllWait-Threshold"]["normalized_cost"] == min(
        row["normalized_cost"] for row in result.rows
    )
    assert rows["AllWait-Threshold"]["normalized_wait"] > 0.6

    # Carbon-aware policies pay the price: all cost more than NoWait.
    for policy in ("Wait Awhile", "Ecovisor", "Carbon-Time"):
        assert rows[policy]["normalized_cost"] > rows["NoWait"]["normalized_cost"]

    # Suspend-resume fragmentation ruins reserved utilization.
    assert rows["Wait Awhile"]["reserved_util"] < rows["NoWait"]["reserved_util"]

    # RES-First-Carbon-Time balances: cheaper than every carbon-aware
    # policy, cleaner than NoWait/AllWait, and the shortest wait of the
    # waiting policies.
    gaia = rows["RES-First-Carbon-Time"]
    for policy in ("Wait Awhile", "Ecovisor", "Carbon-Time"):
        assert gaia["normalized_cost"] < rows[policy]["normalized_cost"]
    assert gaia["normalized_carbon"] < rows["NoWait"]["normalized_carbon"]
    assert gaia["normalized_carbon"] < rows["AllWait-Threshold"]["normalized_carbon"]
    assert gaia["normalized_wait"] < rows["AllWait-Threshold"]["normalized_wait"]
    assert gaia["normalized_wait"] < rows["Wait Awhile"]["normalized_wait"]
