"""Fig. 8 -- carbon vs waiting across the six scheduling policies."""


def test_fig08(regenerate):
    result = regenerate("fig08")
    rows = {row["policy"]: row for row in result.rows}

    # NoWait: the dirtiest schedule, zero waiting.
    assert rows["NoWait"]["normalized_carbon"] == 1.0
    assert rows["NoWait"]["normalized_wait"] == 0.0

    # Suspend-resume policies (exact knowledge / reactive threshold) reach
    # the lowest carbon and the highest waiting.
    assert rows["Wait Awhile"]["normalized_carbon"] == min(
        row["normalized_carbon"] for row in result.rows
    )
    suspenders_wait = min(
        rows["Wait Awhile"]["normalized_wait"], rows["Ecovisor"]["normalized_wait"]
    )
    for policy in ("Lowest-Slot", "Lowest-Window", "Carbon-Time"):
        assert rows[policy]["normalized_wait"] < suspenders_wait

    # Lowest-Window beats Lowest-Slot (window-integral beats point-slot)
    # and comes within ~25% of Wait Awhile without knowing lengths.
    assert rows["Lowest-Window"]["normalized_carbon"] < (
        rows["Lowest-Slot"]["normalized_carbon"]
    )
    assert rows["Lowest-Window"]["normalized_carbon"] < (
        rows["Wait Awhile"]["normalized_carbon"] * 1.45
    )

    # Carbon-Time trades a few % carbon for clearly less waiting (paper:
    # half of Wait Awhile's waiting at +23% carbon).
    assert rows["Carbon-Time"]["normalized_wait"] < (
        0.8 * rows["Wait Awhile"]["normalized_wait"]
    )
    assert rows["Carbon-Time"]["normalized_wait"] < (
        rows["Lowest-Window"]["normalized_wait"]
    )
