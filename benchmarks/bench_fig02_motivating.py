"""Fig. 2 / Section 3 -- the motivating carbon/cost/performance tension."""


def test_fig02(regenerate):
    result = regenerate("fig02")
    ca = result.row_for("region", "CA-US")
    se = result.row_for("region", "SE")

    # Paper (California, Feb): carbon -36%, cost +68%, completion up.
    assert ca["carbon_reduction_pct"] > 15
    assert ca["cost_increase_pct"] > 15
    assert ca["completion_increase_pct"] > 0

    # Paper (Sweden): only ~4% carbon saving yet +76% cost -- blind
    # carbon-chasing in a clean, stable grid wastes money.
    assert se["carbon_reduction_pct"] < ca["carbon_reduction_pct"] / 2
    assert se["cost_increase_pct"] > 15
