"""Fig. 5 -- sampled traces preserve the original length distribution."""


def test_fig05(regenerate):
    result = regenerate("fig05")
    original = result.row_for("trace", "original")
    year = result.row_for("trace", "year-100k")
    week = result.row_for("trace", "week-1k")

    # Paper: ~38% of raw Alibaba jobs are <=5 min, ~0.36% of compute.
    assert 0.25 <= result.extras["short_job_share"] <= 0.5
    assert result.extras["short_compute_share"] < 0.02

    # Filtering removes the <=5 min mass from the sampled traces.
    assert year["<=5min"] < original["<=5min"]
    # The sampled length distribution tracks the filtered original above
    # the cutoffs.
    assert abs(year["<=12h"] - week["<=12h"]) < 0.1
    # The week trace's 4-CPU cap shrinks its mean CPU demand (paper: the
    # week trace's demand distribution is "somewhat different").
    assert week["mean_cpus"] < original["mean_cpus"]
