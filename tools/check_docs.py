#!/usr/bin/env python3
"""Documentation checks: internal links resolve, docs are reachable,
the service API reference matches the code, quickstart commands run.

Four checks (all gate the CI ``docs`` job):

1. every relative markdown link in ``README.md`` and ``docs/*.md``
   points at a file that exists (anchors and external URLs are skipped);
2. every page under ``docs/`` is linked from ``README.md`` — no orphan
   documentation;
3. ``docs/service.md`` matches the service's live surface in **both**
   directions: every route in ``repro.service.http.ROUTES`` has a
   ``### METHOD /path`` section and every documented endpoint exists in
   the route table; every ``python -m repro.service`` parser flag
   appears in the flag reference and every documented flag exists on
   the parser;
4. with ``--run-quickstart``, the commands the README advertises respond
   to ``--help`` (a dry-run proof the documented entry points exist).

Run from the repo root: ``python tools/check_docs.py [--run-quickstart]``.
Exits non-zero with one ``path: message`` line per problem.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: README entry points proven runnable (--help only, no simulation work).
QUICKSTART_COMMANDS = [
    [sys.executable, "-m", "repro", "--help"],
    [sys.executable, "-m", "repro.lint", "--help"],
    [sys.executable, "-m", "repro.obs", "--help"],
    [sys.executable, "-m", "repro.service", "--help"],
    [sys.executable, "-m", "repro.simulator.runner", "--help"],
    [sys.executable, "examples/paper_figures.py", "--help"],
    [sys.executable, "benchmarks/sweep_smoke.py", "--help"],
]


def doc_pages() -> list[Path]:
    """README plus every markdown page under docs/, in stable order."""
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def relative_links(page: Path) -> list[str]:
    """All link targets in ``page`` that should resolve on disk."""
    targets = []
    for target in _LINK.findall(page.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        targets.append(target)
    return targets


def check_links(pages: list[Path]) -> list[str]:
    """Problem messages for link targets that do not exist."""
    problems = []
    for page in pages:
        for target in relative_links(page):
            resolved = (page.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{page.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return problems


def check_docs_reachable() -> list[str]:
    """Problem messages for docs pages the README never links."""
    readme = REPO_ROOT / "README.md"
    linked = {
        (readme.parent / target.split("#", 1)[0]).resolve()
        for target in relative_links(readme)
    }
    return [
        f"README.md: docs page never linked -> docs/{page.name}"
        for page in sorted((REPO_ROOT / "docs").glob("*.md"))
        if page.resolve() not in linked
    ]


#: Documented endpoints: a heading like ``### GET /jobs/{job_id}``.
_ENDPOINT_HEADING = re.compile(r"^###\s+(GET|POST|PUT|DELETE|PATCH)\s+(/\S*)", re.M)

#: Documented CLI flags: backticked long/short options in service.md's
#: flag table, e.g. ``` `--max-pending` ``` or ``` `-w` ```.
_FLAG_TOKEN = re.compile(r"`(--?[a-z][a-z0-9-]*)`")


def check_service_api() -> list[str]:
    """Problem messages for drift between docs/service.md and the code.

    Introspects the live route table (``repro.service.http.ROUTES``)
    and the ``python -m repro.service`` argument parser, and compares
    both against the documented surface — in both directions, so a
    route or flag added without documentation fails exactly like a
    documented endpoint that no longer exists.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.service.__main__ import build_parser
        from repro.service.http import route_table
    finally:
        sys.path.pop(0)

    page = REPO_ROOT / "docs" / "service.md"
    if not page.exists():
        return ["docs/service.md: missing (the service API reference)"]
    text = page.read_text(encoding="utf-8")
    problems = []

    real_routes = {(route.method, route.pattern) for route in route_table()}
    documented_routes = {
        (method, pattern.rstrip(":")) for method, pattern in _ENDPOINT_HEADING.findall(text)
    }
    for method, pattern in sorted(real_routes - documented_routes):
        problems.append(
            f"docs/service.md: route {method} {pattern} has no `### {method} "
            f"{pattern}` section"
        )
    for method, pattern in sorted(documented_routes - real_routes):
        problems.append(
            f"docs/service.md: documents {method} {pattern}, which is not in "
            f"repro.service.http.ROUTES"
        )

    parser = build_parser()
    real_flags = {
        option
        for action in parser._actions
        for option in action.option_strings
        if option not in ("-h", "--help")
    }
    documented_flags = set(_FLAG_TOKEN.findall(text))
    for flag in sorted(real_flags - documented_flags):
        problems.append(
            f"docs/service.md: python -m repro.service flag {flag} is undocumented"
        )
    for flag in sorted(documented_flags - real_flags):
        problems.append(
            f"docs/service.md: documents flag {flag}, which python -m "
            f"repro.service does not accept"
        )
    return problems


def check_quickstart() -> list[str]:
    """Problem messages for advertised commands that fail ``--help``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    problems = []
    for command in QUICKSTART_COMMANDS:
        shown = " ".join(command[1:]) if command[0] == sys.executable else " ".join(command)
        completed = subprocess.run(
            command, cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=120,
        )
        if completed.returncode != 0:
            detail = completed.stderr.strip().splitlines()[-1:] or ["no output"]
            problems.append(f"quickstart: `python {shown}` failed: {detail[0]}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Run the checks; print problems; return the exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--run-quickstart", action="store_true",
        help="also execute the README's entry-point commands with --help",
    )
    args = parser.parse_args(argv)

    pages = doc_pages()
    problems = check_links(pages) + check_docs_reachable() + check_service_api()
    if args.run_quickstart:
        problems += check_quickstart()

    for problem in problems:
        print(problem, file=sys.stderr)
    checked = sum(len(relative_links(page)) for page in pages)
    print(f"check_docs: {len(pages)} pages, {checked} links, "
          f"{len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
