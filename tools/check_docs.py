#!/usr/bin/env python3
"""Documentation checks: internal links resolve, docs are reachable,
quickstart commands run.

Three checks (all gate the CI ``docs`` job):

1. every relative markdown link in ``README.md`` and ``docs/*.md``
   points at a file that exists (anchors and external URLs are skipped);
2. every page under ``docs/`` is linked from ``README.md`` — no orphan
   documentation;
3. with ``--run-quickstart``, the commands the README advertises respond
   to ``--help`` (a dry-run proof the documented entry points exist).

Run from the repo root: ``python tools/check_docs.py [--run-quickstart]``.
Exits non-zero with one ``path: message`` line per problem.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target). Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: README entry points proven runnable (--help only, no simulation work).
QUICKSTART_COMMANDS = [
    [sys.executable, "-m", "repro", "--help"],
    [sys.executable, "-m", "repro.lint", "--help"],
    [sys.executable, "-m", "repro.obs", "--help"],
    [sys.executable, "examples/paper_figures.py", "--help"],
    [sys.executable, "benchmarks/sweep_smoke.py", "--help"],
]


def doc_pages() -> list[Path]:
    """README plus every markdown page under docs/, in stable order."""
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def relative_links(page: Path) -> list[str]:
    """All link targets in ``page`` that should resolve on disk."""
    targets = []
    for target in _LINK.findall(page.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        targets.append(target)
    return targets


def check_links(pages: list[Path]) -> list[str]:
    """Problem messages for link targets that do not exist."""
    problems = []
    for page in pages:
        for target in relative_links(page):
            resolved = (page.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{page.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return problems


def check_docs_reachable() -> list[str]:
    """Problem messages for docs pages the README never links."""
    readme = REPO_ROOT / "README.md"
    linked = {
        (readme.parent / target.split("#", 1)[0]).resolve()
        for target in relative_links(readme)
    }
    return [
        f"README.md: docs page never linked -> docs/{page.name}"
        for page in sorted((REPO_ROOT / "docs").glob("*.md"))
        if page.resolve() not in linked
    ]


def check_quickstart() -> list[str]:
    """Problem messages for advertised commands that fail ``--help``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    problems = []
    for command in QUICKSTART_COMMANDS:
        shown = " ".join(command[1:]) if command[0] == sys.executable else " ".join(command)
        completed = subprocess.run(
            command, cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=120,
        )
        if completed.returncode != 0:
            detail = completed.stderr.strip().splitlines()[-1:] or ["no output"]
            problems.append(f"quickstart: `python {shown}` failed: {detail[0]}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Run the checks; print problems; return the exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--run-quickstart", action="store_true",
        help="also execute the README's entry-point commands with --help",
    )
    args = parser.parse_args(argv)

    pages = doc_pages()
    problems = check_links(pages) + check_docs_reachable()
    if args.run_quickstart:
        problems += check_quickstart()

    for problem in problems:
        print(problem, file=sys.stderr)
    checked = sum(len(relative_links(page)) for page in pages)
    print(f"check_docs: {len(pages)} pages, {checked} links, "
          f"{len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
