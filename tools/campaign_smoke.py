"""CI smoke test: SIGKILL a running campaign, resume it, demand parity.

Creates a campaign of ``--specs`` distinct simulations, starts the
``python -m repro.simulator.runner resume`` CLI against it, SIGKILLs the
whole process group once at least ``--kill-after`` completions are
journaled, then resumes in-process and asserts:

* the resumed campaign completes;
* the number of specs executed after resume equals the number that had
  no journaled completion (zero re-executions of journaled work), and
  is strictly below the campaign size;
* the per-spec result digests match an uninterrupted reference campaign
  bit for bit.

Run from the repository root with ``repro`` importable:
``python tools/campaign_smoke.py``.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.carbon.trace import CarbonIntensityTrace
from repro.simulator.runner import Campaign, RunStats, SimulationSpec
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace


def build_specs(count: int) -> list[SimulationSpec]:
    """``count`` distinct medium-weight specs (~10 ms each)."""
    jobs = [
        Job(job_id=i, arrival=(i % 144) * 60, length=240, cpus=2)
        for i in range(300)
    ]
    workload = WorkloadTrace(jobs, name="campaign-smoke")
    carbon = CarbonIntensityTrace(np.linspace(80.0, 400.0, 7 * 24), name="ramp")
    return [
        SimulationSpec.build(workload, carbon, "carbon-time", spot_seed=seed)
        for seed in range(count)
    ]


def kill_mid_campaign(directory: Path, kill_after: int, timeout: float) -> None:
    """Run the resume CLI detached and SIGKILL it mid-campaign."""
    journal = directory / "journal.jsonl"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.simulator.runner",
            "resume", str(directory), "--jobs", "2", "--no-cache",
        ],
        start_new_session=True,
    )
    try:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if journal.exists() and journal.read_text().count("completed") >= kill_after:
                break
            if process.poll() is not None:
                print("warning: CLI finished before the kill threshold", flush=True)
                break
            time.sleep(0.002)
        else:
            raise SystemExit(
                f"CLI never journaled {kill_after} completions within {timeout}s"
            )
    finally:
        if process.poll() is None:
            os.killpg(process.pid, signal.SIGKILL)
        process.wait(timeout=60)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--specs", type=int, default=200)
    parser.add_argument("--kill-after", type=int, default=20)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    specs = build_specs(args.specs)
    with tempfile.TemporaryDirectory(prefix="campaign-smoke-") as root:
        reference_dir = Path(root) / "reference"
        victim_dir = Path(root) / "victim"

        started = time.monotonic()
        reference = Campaign.create(reference_dir, specs, name="reference")
        reference_report = reference.run(jobs=2, use_cache=False)
        if not reference_report.complete:
            raise SystemExit("reference campaign did not complete")
        print(
            f"reference: {args.specs} specs in "
            f"{time.monotonic() - started:.1f}s",
            flush=True,
        )

        Campaign.create(victim_dir, specs, name="victim")
        kill_mid_campaign(victim_dir, args.kill_after, args.timeout)

        victim = Campaign.load(victim_dir)
        completed_before = len(victim.completed_results())
        print(f"killed with {completed_before} completions journaled", flush=True)

        stats = RunStats()
        report = victim.run(jobs=2, use_cache=False, stats=stats)
        executed_after_resume = stats.executed
        print(
            f"resume executed {executed_after_resume} specs via {stats.backend}",
            flush=True,
        )

        if not report.complete:
            raise SystemExit("resumed campaign did not complete")
        if executed_after_resume != args.specs - completed_before:
            raise SystemExit(
                f"re-execution leak: resumed {executed_after_resume} but only "
                f"{args.specs - completed_before} specs were unjournaled"
            )
        if executed_after_resume >= args.specs:
            raise SystemExit("kill landed after the campaign already finished")
        if report.results_digest() != reference_report.results_digest():
            raise SystemExit("resumed campaign diverged from the reference")

    print("campaign smoke OK: digest parity, zero re-executions", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
